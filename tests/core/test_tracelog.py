"""Tests for the kernel-logging analog."""

import pytest

from repro.apps.netperf import TcpStream
from repro.core import EmulationConfig, ExperimentPipeline
from repro.core.tracelog import (
    PKT_ENTER,
    PKT_EXIT,
    PIPE_SAMPLE,
    Record,
    TraceLog,
)
from repro.engine import Simulator
from repro.topology import chain_topology


def run_instrumented(sample_every=0.0, capacity=500_000):
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(chain_topology(1, hops=3, bandwidth_bps=10e6, latency_s=0.010))
        .run(EmulationConfig())
    )
    log = TraceLog(capacity=capacity)
    log.attach(emulation, sample_pipes_every_s=sample_every)
    stream = TcpStream(emulation, 0, 1)
    sim.run(until=1.5)
    stream.stop()
    return log, emulation


def test_records_enter_and_exit():
    log, emulation = run_instrumented()
    enters = log.records(PKT_ENTER)
    exits = log.records(PKT_EXIT)
    assert len(enters) == emulation.monitor.packets_entered
    assert len(exits) == emulation.monitor.packets_delivered
    assert len(exits) > 100


def test_error_series_bounded_by_monitor():
    log, emulation = run_instrumented()
    series = log.error_series()
    assert series
    worst = max(error for _t, error in series)
    assert worst == pytest.approx(emulation.accuracy_report().max_error_s)


def test_throughput_series():
    log, _ = run_instrumented()
    series = log.throughput_series(bucket_s=0.5)
    assert len(series) >= 2
    assert all(rate > 0 for _t, rate in series)


def test_pipe_sampling():
    log, _ = run_instrumented(sample_every=0.01)
    samples = log.records(PIPE_SAMPLE)
    assert samples
    worst = log.worst_pipe_backlogs(top=3)
    assert worst
    assert worst[0][1] >= worst[-1][1]


def test_ring_bound_evicts_oldest():
    log, _ = run_instrumented(capacity=100)
    assert len(log) == 100
    assert log.dropped_records > 0


def test_dump_and_load_roundtrip(tmp_path):
    log, _ = run_instrumented()
    path = tmp_path / "trace.jsonl"
    written = log.dump(str(path))
    loaded = TraceLog.load(str(path))
    assert len(loaded) == written
    assert loaded.error_series() == log.error_series()


def test_record_json_roundtrip():
    record = Record(1.25, PKT_EXIT, (0.0001,))
    assert Record.from_json(record.to_json()) == record


def test_validation():
    with pytest.raises(ValueError):
        TraceLog(capacity=0)
    with pytest.raises(ValueError):
        TraceLog().throughput_series(bucket_s=0)
