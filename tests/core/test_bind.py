"""Tests for VN binding."""

import pytest

from repro.core import Binding, bind_vns
from repro.topology import TopologyError, ring_topology, star_topology


def test_contiguous_binding_packs_ranges():
    topology = star_topology(10)
    binding = bind_vns(topology, num_hosts=3, num_cores=2)
    assert binding.num_vns == 10
    assert binding.vn_to_host == [0, 0, 0, 0, 1, 1, 1, 2, 2, 2]
    assert binding.host_to_core == [0, 1, 0]


def test_round_robin_binding():
    topology = star_topology(6)
    binding = bind_vns(topology, num_hosts=3, num_cores=3, strategy="round_robin")
    assert binding.vn_to_host == [0, 1, 2, 0, 1, 2]
    assert binding.core_of_vn(0) == 0
    assert binding.core_of_vn(1) == 1


def test_multiplexing_degree():
    topology = star_topology(100)
    binding = bind_vns(topology, num_hosts=4, num_cores=1)
    assert binding.multiplexing_degree() == pytest.approx(25.0)
    assert len(binding.vns_of_host(0)) == 25


def test_host_configs_structure():
    topology = star_topology(4)
    binding = bind_vns(topology, num_hosts=2, num_cores=2)
    configs = binding.host_configs()
    assert len(configs) == 2
    assert configs[0]["core"] == 0
    assert configs[1]["core"] == 1
    first_vn = configs[0]["vns"][0]
    assert first_vn["ip"] == "10.0.0.1"
    assert first_vn["topology_node"] in topology.nodes


def test_unknown_strategy_rejected():
    topology = star_topology(4)
    with pytest.raises(TopologyError):
        bind_vns(topology, 1, 1, strategy="by-coinflip")


def test_zero_hosts_rejected():
    topology = star_topology(4)
    with pytest.raises(TopologyError):
        bind_vns(topology, 0, 1)


def test_no_clients_rejected():
    import repro.topology as rt

    topology = rt.Topology()
    topology.add_node(rt.NodeKind.STUB)
    with pytest.raises(TopologyError):
        bind_vns(topology, 1, 1)


def test_binding_validation():
    with pytest.raises(TopologyError):
        Binding([1, 2], [0], [0])
    with pytest.raises(TopologyError):
        Binding([1], [5], [0])


def test_uneven_split_spreads_extras():
    topology = star_topology(7)
    binding = bind_vns(topology, num_hosts=3, num_cores=1)
    sizes = [len(binding.vns_of_host(h)) for h in range(3)]
    assert sorted(sizes) == [2, 2, 3]
