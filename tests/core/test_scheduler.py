"""Tests for the heap-of-pipes tick scheduler."""

import pytest

from repro.core.packet import PacketDescriptor
from repro.core.pipe import INFINITY, Pipe
from repro.core.scheduler import PipeScheduler
from repro.net.packet import Packet


def descriptor(size=1000):
    return PacketDescriptor(Packet(0, 1, size, "udp"), (), 0, 0.0)


def test_quantize_rounds_up_to_tick():
    scheduler = PipeScheduler(tick_s=1e-4)
    assert scheduler.quantize(0.00012) == pytest.approx(0.0002)
    assert scheduler.quantize(0.0002) == pytest.approx(0.0002)
    assert scheduler.quantize(0.0) == 0.0


def test_quantize_exact_mode_is_identity():
    scheduler = PipeScheduler(tick_s=0.0)
    assert scheduler.quantize(0.000123) == 0.000123


def test_quantize_tolerates_float_noise():
    scheduler = PipeScheduler(tick_s=1e-4)
    # 693 ticks with accumulated float error just above the boundary.
    assert scheduler.quantize(0.06930000000000001) == pytest.approx(0.0693)


def test_notify_and_earliest_deadline():
    scheduler = PipeScheduler(tick_s=1e-4)
    pipe = Pipe(0, 1e6, 0.01)
    assert scheduler.earliest_deadline() == INFINITY
    pipe.arrival(descriptor(1250), 0.0, 0.0)
    scheduler.notify(pipe)
    assert scheduler.earliest_deadline() == pytest.approx(0.01)
    assert scheduler.next_wake() == pytest.approx(0.01)


def test_collect_services_matured_pipes():
    scheduler = PipeScheduler(tick_s=1e-4)
    pipe = Pipe(0, 1e6, 0.005)
    d = descriptor(1250)
    pipe.arrival(d, 0.0, 0.0)
    scheduler.notify(pipe)
    assert scheduler.collect(0.005) == []  # dequeue only, no exit yet
    serviced = scheduler.collect(0.015)
    assert serviced == [(pipe, [d])]
    assert scheduler.hops_serviced == 1


def test_collect_reinserts_pipe_with_new_deadline():
    scheduler = PipeScheduler(tick_s=1e-4)
    pipe = Pipe(0, 1e6, 0.0)
    first, second = descriptor(1250), descriptor(1250)
    pipe.arrival(first, 0.0, 0.0)
    pipe.arrival(second, 0.0, 0.0)
    scheduler.notify(pipe)
    assert scheduler.collect(0.01) == [(pipe, [first])]
    assert scheduler.next_wake() == pytest.approx(0.02)
    assert scheduler.collect(0.02) == [(pipe, [second])]


def test_earlier_arrival_updates_heap():
    scheduler = PipeScheduler(tick_s=1e-4)
    slow = Pipe(0, 1e5, 0.0)
    fast = Pipe(1, 1e9, 0.0)
    slow.arrival(descriptor(1250), 0.0, 0.0)
    scheduler.notify(slow)
    fast.arrival(descriptor(1250), 0.0, 0.0)
    scheduler.notify(fast)
    assert scheduler.earliest_deadline() == pytest.approx(1e-5)


def test_stale_entries_skipped():
    scheduler = PipeScheduler(tick_s=1e-4)
    pipe = Pipe(0, 1e6, 0.0)
    pipe.arrival(descriptor(1250), 0.0, 0.0)
    scheduler.notify(pipe)
    scheduler.notify(pipe)  # duplicate notify is a no-op
    serviced = scheduler.collect(1.0)
    assert len(serviced) == 1


def test_multiple_pipes_serviced_in_deadline_order():
    scheduler = PipeScheduler(tick_s=0.0)
    early = Pipe(0, 1e6, 0.0)
    late = Pipe(1, 1e5, 0.0)
    d_early, d_late = descriptor(1250), descriptor(1250)
    early.arrival(d_early, 0.0, 0.0)
    late.arrival(d_late, 0.0, 0.0)
    scheduler.notify(early)
    scheduler.notify(late)
    serviced = scheduler.collect(1.0)
    assert [pipe.id for pipe, _ in serviced] == [0, 1]


def test_negative_tick_rejected():
    with pytest.raises(ValueError):
        PipeScheduler(tick_s=-1.0)
