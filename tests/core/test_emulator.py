"""Integration-level tests for the Emulation fabric."""

import pytest

from repro.core import (
    DistillationMode,
    EmulationConfig,
    ExperimentPipeline,
)
from repro.engine import Simulator
from repro.topology import chain_topology, dumbbell_topology, star_topology


def build(topology, config=None, cores=1, hosts=1, **pipeline_kwargs):
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(cores)
        .bind(hosts)
        .run(config or EmulationConfig())
    )
    return sim, emulation


def test_pipes_created_per_direction():
    topology = star_topology(4)
    sim, emulation = build(topology)
    assert len(emulation.pipes) == 2 * topology.num_links
    fwd, rev = emulation.pipes_of_link(0)
    assert fwd.src_node == rev.dst_node
    assert fwd.dst_node == rev.src_node


def test_udp_end_to_end_through_core():
    sim, emulation = build(
        chain_topology(1, hops=2, bandwidth_bps=10e6, latency_s=0.010)
    )
    received = []
    emulation.vn(1).udp_socket(
        port=9, on_receive=lambda *args: received.append(sim.now)
    )
    sender = emulation.vn(0).udp_socket()
    sender.send_to(1, 9, 1000)
    sim.run(until=1.0)
    assert len(received) == 1
    # 2 hops at 5 ms each + ~0.8 ms serialization per hop + physical.
    assert 0.011 < received[0] < 0.015


def test_reference_mode_exact_delivery_time():
    config = EmulationConfig.reference()
    sim, emulation = build(
        chain_topology(1, hops=2, bandwidth_bps=10e6, latency_s=0.010),
        config,
    )
    received = []
    emulation.vn(1).udp_socket(
        port=9, on_receive=lambda *args: received.append(sim.now)
    )
    emulation.vn(0).udp_socket().send_to(1, 9, 1000)
    sim.run(until=1.0)
    # Exactly 2 * (latency + serialization of 1040 wire bytes).
    expected = 2 * (0.005 + 1040 * 8 / 10e6)
    assert received[0] == pytest.approx(expected)
    assert emulation.accuracy_report().max_error_s == 0.0


def test_unroutable_packet_counted():
    sim, emulation = build(star_topology(3))
    emulation.topology.link_between(0, 1).up = False
    emulation.routing.invalidate()
    emulation.vn(0).udp_socket().send_to(1, 9, 100)
    sim.run(until=0.5)
    assert emulation.monitor.packets_unroutable == 1


def test_congestion_shares_bottleneck():
    """Two TCP flows across a dumbbell split the bottleneck fairly."""
    topology = dumbbell_topology(
        clients_per_side=2, bottleneck_bandwidth_bps=2e6
    )
    sim, emulation = build(topology, EmulationConfig.reference())
    # Clients 0,1 on the left; 2,3 on the right.
    left = [v for v in emulation.vns if topology.node(v.node_id).attrs["side"] == "left"]
    right = [v for v in emulation.vns if topology.node(v.node_id).attrs["side"] == "right"]
    conns = []
    for sender, receiver in zip(left, right):
        receiver.tcp_listen(80, lambda c: None)
        conns.append(
            sender.tcp_connect(
                receiver.vn_id, 80, on_established=lambda c: c.send(10_000_000)
            )
        )
    sim.run(until=10.0)
    rates = [c.bytes_acked * 8 / 10.0 for c in conns]
    total = sum(rates)
    assert total == pytest.approx(2e6, rel=0.15)
    assert min(rates) / max(rates) > 0.6  # rough fairness


def test_virtual_drops_accounted():
    topology = dumbbell_topology(
        clients_per_side=4, bottleneck_bandwidth_bps=1e6
    )
    sim, emulation = build(topology, EmulationConfig.reference())
    left = [v for v in emulation.vns if topology.node(v.node_id).attrs["side"] == "left"]
    right = [v for v in emulation.vns if topology.node(v.node_id).attrs["side"] == "right"]
    for sender, receiver in zip(left, right):
        receiver.tcp_listen(80, lambda c: None)
        sender.tcp_connect(
            receiver.vn_id, 80, on_established=lambda c: c.send(5_000_000)
        )
    sim.run(until=5.0)
    assert emulation.virtual_drops() > 0
    report = emulation.accuracy_report()
    assert report.virtual_drops == emulation.virtual_drops()


def test_set_link_params_changes_behavior():
    topology = chain_topology(1, hops=1, bandwidth_bps=10e6, latency_s=0.010)
    sim, emulation = build(topology, EmulationConfig.reference())
    received = []
    emulation.vn(1).udp_socket(
        port=9, on_receive=lambda *args: received.append(sim.now)
    )
    sender = emulation.vn(0).udp_socket()
    sender.send_to(1, 9, 1000)
    sim.at(1.0, lambda: emulation.set_link_params(0, latency_s=0.100))
    sim.at(2.0, sender.send_to, 1, 9, 1000)
    sim.run()
    assert received[0] - 0.0 < 0.02
    assert received[1] - 2.0 > 0.10


def test_link_failure_reroutes():
    """A square topology: failing the short path shifts traffic to
    the long one with higher latency."""
    import repro.topology as rt

    topology = rt.Topology()
    c0 = topology.add_node(rt.NodeKind.CLIENT)
    r1 = topology.add_node(rt.NodeKind.STUB)
    r2 = topology.add_node(rt.NodeKind.STUB)
    c3 = topology.add_node(rt.NodeKind.CLIENT)
    fast_a = topology.add_link(c0.id, r1.id, 10e6, 0.001)
    topology.add_link(r1.id, c3.id, 10e6, 0.001)
    topology.add_link(c0.id, r2.id, 10e6, 0.020)
    topology.add_link(r2.id, c3.id, 10e6, 0.020)

    sim, emulation = build(topology, EmulationConfig.reference())
    received = []
    emulation.vn(1).udp_socket(
        port=9, on_receive=lambda *args: received.append(sim.now)
    )
    sender = emulation.vn(0).udp_socket()
    sender.send_to(1, 9, 100)
    sim.at(1.0, emulation.set_link_up, fast_a.id, False)
    sim.at(2.0, sender.send_to, 1, 9, 100)
    sim.at(3.0, emulation.set_link_up, fast_a.id, True)
    sim.at(4.0, sender.send_to, 1, 9, 100)
    sim.run()
    assert len(received) == 3
    assert received[0] - 0.0 < 0.01  # fast path
    assert received[1] - 2.0 > 0.04  # rerouted to slow path
    assert received[2] - 4.0 < 0.01  # recovered


def test_multi_core_tunneling():
    """A 2-hop star split across 2 cores tunnels descriptors for
    flows whose access pipes live on different cores."""
    from repro.core.assign import assign_by_vn_groups

    topology = star_topology(4, bandwidth_bps=10e6, latency_s=0.005)
    clients = sorted(n.id for n in topology.clients())
    assignment = assign_by_vn_groups(topology, [clients[:2], clients[2:]])
    sim = Simulator()
    from repro.core.emulator import Emulation

    emulation = Emulation(
        sim,
        topology,
        EmulationConfig(num_cores=2, num_hosts=2),
        assignment=assignment,
    )
    received = []
    emulation.vn(2).udp_socket(
        port=9, on_receive=lambda *args: received.append(sim.now)
    )
    emulation.vn(0).udp_socket().send_to(2, 9, 1000)  # crosses cores
    sim.run(until=1.0)
    assert received
    assert emulation.monitor.tunnels >= 1
    assert emulation.cores[0].tunnels_sent + emulation.cores[1].tunnels_sent >= 1


def test_same_attachment_vn_pair_delivers_directly():
    """Two VNs bound to the same topology node exchange packets with
    an empty pipe route."""
    import repro.topology as rt
    from repro.core.bind import Binding
    from repro.core.emulator import Emulation

    topology = rt.star_topology(2)
    client = sorted(n.id for n in topology.clients())[0]
    binding = Binding([client, client], [0, 0], [0])
    sim = Simulator()
    emulation = Emulation(
        sim, topology, EmulationConfig(), binding=binding
    )
    received = []
    emulation.vn(1).udp_socket(
        port=9, on_receive=lambda *args: received.append(sim.now)
    )
    emulation.vn(0).udp_socket().send_to(1, 9, 100)
    sim.run(until=0.5)
    assert len(received) == 1


def test_accuracy_report_fields():
    sim, emulation = build(chain_topology(2, hops=2))
    for pair in range(2):
        emulation.vn(2 * pair + 1).udp_socket(port=9, on_receive=lambda *a: None)
        emulation.vn(2 * pair).udp_socket().send_to(2 * pair + 1, 9, 500)
    sim.run(until=1.0)
    report = emulation.accuracy_report()
    assert report.packets_delivered == 2
    assert report.packets_entered == 2
    assert report.max_error_s <= 3 * emulation.config.core_spec.tick_s
    assert "delivered=2" in str(report)


def test_emulation_is_deterministic_given_seed():
    """Two identical runs produce identical packet accounting."""
    import random as _random

    def run_once():
        topology = dumbbell_topology(
            clients_per_side=3, bottleneck_bandwidth_bps=2e6
        )
        sim, emulation = build(topology, EmulationConfig(seed=5))
        from repro.apps.netperf import TcpStream

        # VNs 0-2 are the left clients, 3-5 the right.
        streams = [TcpStream(emulation, 0, 3), TcpStream(emulation, 1, 4)]
        sim.run(until=3.0)
        return (
            emulation.monitor.packets_delivered,
            emulation.virtual_drops(),
            tuple(stream.bytes_received for stream in streams),
            sim.events_dispatched,
        )

    assert run_once() == run_once()


def test_red_qdisc_selected_from_link_attrs():
    from repro.core.queues import DropTailQueue, REDQueue

    topology = star_topology(2)
    link = next(iter(topology.links.values()))
    link.attrs["qdisc"] = "red"
    link.attrs["red_max_p"] = 0.5
    sim, emulation = build(topology)
    red_pipe = emulation.pipes_of_link(link.id)[0]
    other = emulation.pipes_of_link(1)[0]
    assert isinstance(red_pipe.qdisc, REDQueue)
    assert red_pipe.qdisc.max_p == 0.5
    assert isinstance(other.qdisc, DropTailQueue)


def test_reference_config_overrides():
    config = EmulationConfig.reference(seed=9, num_cores=2)
    assert config.tick_s == 0.0
    assert not config.model_physical
    assert config.exact
    assert config.seed == 9
    assert config.num_cores == 2


def test_custom_tcp_params_flow_to_stacks():
    from repro.net.tcp import TcpParams

    config = EmulationConfig.reference()
    config.tcp_params = TcpParams(mss=500)
    sim, emulation = build(star_topology(2), config)
    assert emulation.vn(0).stack.tcp_params.mss == 500


def test_config_validate_rejects_bad_values():
    with pytest.raises(ValueError, match="tick_s"):
        EmulationConfig(tick_s=-1e-4)
    with pytest.raises(ValueError, match="num_cores"):
        EmulationConfig(num_cores=0)
    with pytest.raises(ValueError, match="num_hosts"):
        EmulationConfig(num_hosts=0)
    with pytest.raises(ValueError, match="binding_strategy"):
        EmulationConfig(binding_strategy="scattered")
    with pytest.raises(ValueError, match="routing_weight"):
        EmulationConfig(routing_weight="vibes")


def test_config_validate_catches_post_construction_mutation():
    config = EmulationConfig()
    config.num_cores = 0
    with pytest.raises(ValueError, match="num_cores"):
        config.validate()


def test_set_link_params_rejects_unknown_knobs():
    sim, emulation = build(star_topology(2))
    fwd, _rev = emulation.pipes_of_link(0)
    before = fwd.latency_s
    with pytest.raises(ValueError) as err:
        emulation.set_link_params(0, latency_ms=5)
    # The error lists the valid knobs and no pipe was touched.
    assert "bandwidth_bps" in str(err.value)
    assert "latency_s" in str(err.value)
    assert fwd.latency_s == before


def test_pipe_set_params_rejects_unknown_knobs():
    sim, emulation = build(star_topology(2))
    fwd, _rev = emulation.pipes_of_link(0)
    with pytest.raises(ValueError, match="queue_limit"):
        fwd.set_params(queue_limits=10)


def test_route_lookup_memo_returns_same_tuple():
    sim, emulation = build(chain_topology(1, hops=3))
    first = emulation.lookup_pipes(0, 1)
    second = emulation.lookup_pipes(0, 1)
    assert first is second  # memo hit: no recompute, no new tuple


def test_route_lookup_memo_invalidated_by_routing_change():
    sim, emulation = build(chain_topology(1, hops=3))
    before = emulation.lookup_pipes(0, 1)
    generation = emulation._route_gen
    emulation.routing.invalidate()
    assert emulation._route_gen == generation + 1
    after = emulation.lookup_pipes(0, 1)
    assert after is not before  # stale entry overwritten
    assert [pipe.id for pipe in after] == [pipe.id for pipe in before]
