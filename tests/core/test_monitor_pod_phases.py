"""Tests for the monitor, the pipe ownership directory, and the
five-phase pipeline builder."""

import pytest

from repro.core import (
    DistillationMode,
    EmulationConfig,
    EmulationMonitor,
    ExperimentPipeline,
)
from repro.core.assign import greedy_k_clusters
from repro.core.pod import PipeOwnershipDirectory
from repro.engine import Simulator
from repro.topology import TopologyError, ring_topology, star_topology


# ---------------------------------------------------------------- monitor

def test_monitor_error_stats():
    monitor = EmulationMonitor()
    monitor.packet_exited(1.0, 1.0001)
    monitor.packet_exited(2.0, 2.0003)
    report = monitor.report()
    assert report.packets_delivered == 2
    assert report.max_error_s == pytest.approx(0.0003)
    assert report.mean_error_s == pytest.approx(0.0002)


def test_monitor_window_pps():
    monitor = EmulationMonitor()
    for _ in range(5):
        monitor.packet_exited(0.0, 0.0)
    monitor.begin_window(10.0)
    for _ in range(100):
        monitor.packet_exited(0.0, 0.0)
    assert monitor.window_packets() == 100
    assert monitor.window_pps(12.0) == pytest.approx(50.0)


def test_monitor_sampling_cap():
    monitor = EmulationMonitor(max_samples=10)
    for index in range(50):
        monitor.packet_exited(0.0, index * 1e-6)
    assert len(monitor.error_samples) == 10


def test_monitor_drop_taxonomy():
    monitor = EmulationMonitor()
    monitor.ring_drop()
    monitor.egress_drop()
    monitor.uplink_drop()
    monitor.uplink_drop()
    assert monitor.physical_drops == 4
    report = monitor.report(virtual_drops=7)
    assert report.physical_drops == 4
    assert report.virtual_drops == 7


# ---------------------------------------------------------------- POD

def test_pod_ownership_and_crossings():
    topology = star_topology(4)
    assignment = greedy_k_clusters(topology, 2, __import__("random").Random(1))
    pod = PipeOwnershipDirectory(assignment)
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .distill()
        .assign(assignment=assignment)
        .bind(1)
        .run(EmulationConfig.reference())
    )
    pipes = emulation.lookup_pipes(0, 3)
    assert pipes is not None
    crossings = pod.crossings(pipes)
    owners = {pod.owner_of(pipe) for pipe in pipes}
    assert crossings == len(owners) - 1 if len(pipes) == 2 else crossings >= 0
    load = pod.load_by_core(emulation.pipes.values())
    assert sum(load) == len(emulation.pipes)


# ---------------------------------------------------------------- phases

def test_pipeline_full_flow():
    sim = Simulator()
    pipeline = (
        ExperimentPipeline(sim, seed=3)
        .create(ring_topology(num_routers=4, vns_per_router=2))
        .distill(DistillationMode.WALK_IN, walk_in=1)
        .assign(num_cores=2)
        .bind(num_hosts=2)
    )
    emulation = pipeline.run()
    assert emulation.num_vns == 8
    assert len(emulation.cores) == 2
    assert len(emulation.hosts) == 2
    assert pipeline.distillation.mesh_links == 6  # C(4,2) ring mesh


def test_pipeline_defaults_fill_in():
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(star_topology(4))
        .run()
    )
    assert emulation.num_vns == 4
    assert len(emulation.cores) == 1


def test_pipeline_create_required_first():
    sim = Simulator()
    with pytest.raises(TopologyError):
        ExperimentPipeline(sim).distill()


def test_pipeline_rejects_topology_without_clients():
    import repro.topology as rt

    topology = rt.Topology()
    topology.add_node(rt.NodeKind.STUB)
    topology.add_node(rt.NodeKind.STUB)
    topology.add_link(0, 1, 1e6, 1e-3)
    sim = Simulator()
    with pytest.raises(TopologyError):
        ExperimentPipeline(sim).create(topology)


def test_pipeline_gml_entry():
    gml = """
    graph [
      node [ id 0 kind "client" ]
      node [ id 1 kind "client" ]
      edge [ source 0 target 1 bandwidth 1000000.0 latency 0.005 ]
    ]
    """
    sim = Simulator()
    emulation = ExperimentPipeline(sim).create_gml(gml).run()
    assert emulation.num_vns == 2


def test_pipeline_traffic_flows_end_to_end():
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(ring_topology(num_routers=4, vns_per_router=2))
        .distill(DistillationMode.WALK_IN, walk_in=1)
        .assign(2)
        .bind(2)
        .run(EmulationConfig(num_cores=2))
    )
    received = []
    emulation.vn(7).udp_socket(port=9, on_receive=lambda *a: received.append(1))
    emulation.vn(0).udp_socket().send_to(7, 9, 500)
    sim.run(until=1.0)
    assert received
