"""Tests for topology distillation, including the paper's ring
accounting (Sec. 4.1)."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DistillationMode, distill
from repro.core.distill import frontier_sets
from repro.routing import (
    CachedRouting,
    route_bottleneck_bandwidth,
    route_latency,
    route_reliability,
)
from repro.topology import (
    NodeKind,
    Topology,
    TopologyError,
    chain_topology,
    ring_topology,
    transit_stub_topology,
    TransitStubSpec,
    waxman_topology,
)


def paper_ring():
    """20 routers at 20 Mb/s, 20 VNs each at 2 Mb/s."""
    return ring_topology(num_routers=20, vns_per_router=20)


def test_hop_by_hop_is_isomorphic_copy():
    topology = paper_ring()
    result = distill(topology, DistillationMode.HOP_BY_HOP)
    assert result.topology.num_nodes == topology.num_nodes
    assert result.topology.num_links == topology.num_links
    assert result.preserved_links == topology.num_links
    # Original untouched, copy independent.
    assert result.topology is not topology


def test_end_to_end_mesh_counts_match_paper():
    # "The end-to-end distillation contains 79,800 pipes, one for
    # each VN pair, each with a bandwidth of 2 Mb/s."
    result = distill(paper_ring(), DistillationMode.END_TO_END)
    assert result.topology.num_links == 79_800
    assert result.topology.num_nodes == 400
    assert all(
        link.bandwidth_bps == pytest.approx(2e6)
        for link in result.topology.links.values()
    )


def test_last_mile_counts_match_paper():
    # "The last-mile distillation preserves the 400 edge links to the
    # VNs, and maps the ring itself to a fully connected mesh of 190
    # links."
    result = distill(paper_ring(), DistillationMode.WALK_IN, walk_in=1)
    assert result.preserved_links == 400
    assert result.mesh_links == 190
    assert result.collapsed_links == 20
    assert result.topology.num_links == 590


def test_last_mile_path_length_bound():
    # Each packet traverses at most 2*walk_in + 1 = 3 pipes.
    result = distill(paper_ring(), DistillationMode.WALK_IN, walk_in=1)
    routing = CachedRouting(result.topology, weight="hops")
    clients = [n.id for n in result.topology.clients()]
    rng = random.Random(0)
    for _ in range(50):
        src, dst = rng.sample(clients, 2)
        route = routing.route(src, dst)
        assert route is not None
        assert len(route) <= 3


def test_collapsed_pipe_properties():
    """End-to-end pipes take min bandwidth, summed latency, and
    product reliability of the collapsed path."""
    topology = Topology()
    a = topology.add_node(NodeKind.CLIENT)
    r1 = topology.add_node(NodeKind.STUB)
    r2 = topology.add_node(NodeKind.STUB)
    b = topology.add_node(NodeKind.CLIENT)
    topology.add_link(a.id, r1.id, 2e6, 0.001, loss_rate=0.01)
    topology.add_link(r1.id, r2.id, 10e6, 0.020, loss_rate=0.02)
    topology.add_link(r2.id, b.id, 5e6, 0.003, loss_rate=0.0)
    result = distill(topology, DistillationMode.END_TO_END)
    assert result.topology.num_links == 1
    pipe = next(iter(result.topology.links.values()))
    assert pipe.bandwidth_bps == pytest.approx(2e6)
    assert pipe.latency_s == pytest.approx(0.024)
    assert pipe.loss_rate == pytest.approx(1 - 0.99 * 0.98)


def test_end_to_end_latency_matches_shortest_path():
    topology = waxman_topology(
        12, random.Random(5), clients_per_router=2
    )
    routing = CachedRouting(topology, weight="latency")
    result = distill(topology, DistillationMode.END_TO_END)
    clients = sorted(n.id for n in topology.clients())
    for src in clients[:4]:
        for dst in clients[:4]:
            if src == dst:
                continue
            link = result.topology.link_between(src, dst)
            route = routing.route(src, dst)
            assert link.latency_s == pytest.approx(route_latency(route))
            assert link.bandwidth_bps == pytest.approx(
                route_bottleneck_bandwidth(route)
            )


def test_frontier_sets_on_chain():
    topology = chain_topology(1, hops=5)
    clients = [n.id for n in topology.clients()]
    frontiers = frontier_sets(topology, clients)
    assert frontiers[0] == set(clients)
    # 4 interior routers between the two clients: frontiers close in
    # from both ends.
    sizes = [len(f) for f in frontiers]
    assert sum(sizes) == topology.num_nodes


def test_walk_in_2_preserves_more():
    topology = paper_ring()
    last_mile = distill(topology, DistillationMode.WALK_IN, walk_in=1)
    walk2 = distill(topology, DistillationMode.WALK_IN, walk_in=2)
    # walk_in=2 keeps the ring routers in the preserved zone, so all
    # original links survive and no mesh is needed.
    assert walk2.preserved_links == 420
    assert walk2.mesh_links == 0
    assert last_mile.preserved_links < walk2.preserved_links


def test_walk_out_preserves_center():
    # A chain is a worst case: the BFS center is mid-chain.
    topology = chain_topology(1, hops=8)
    plain = distill(topology, DistillationMode.WALK_IN, walk_in=1)
    with_core = distill(
        topology, DistillationMode.WALK_IN, walk_in=1, walk_out=2
    )
    assert with_core.preserved_links > plain.preserved_links


def test_walk_in_zero_rejected():
    with pytest.raises(TopologyError):
        distill(paper_ring(), DistillationMode.WALK_IN, walk_in=0)


def test_no_vns_rejected():
    topology = Topology()
    topology.add_node(NodeKind.STUB)
    with pytest.raises(TopologyError):
        distill(topology, DistillationMode.END_TO_END)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500), walk_in=st.integers(1, 3))
def test_property_distilled_connectivity_and_reachability(seed, walk_in):
    """Every VN pair reachable in the target stays reachable in any
    distillation, with end-to-end latency never below the target's
    shortest path (collapsing cannot create shortcuts)."""
    spec = TransitStubSpec(
        transit_nodes_per_domain=3,
        stub_domains_per_transit_node=1,
        stub_nodes_per_domain=3,
    )
    topology = transit_stub_topology(spec, random.Random(seed))
    target_latency = CachedRouting(topology, weight="latency")
    target_hops = CachedRouting(topology, weight="hops")
    result = distill(topology, DistillationMode.WALK_IN, walk_in=walk_in)
    distilled_latency = CachedRouting(result.topology, weight="latency")
    distilled_hops = CachedRouting(result.topology, weight="hops")
    clients = sorted(n.id for n in topology.clients())
    rng = random.Random(seed)
    for _ in range(10):
        src, dst = rng.sample(clients, 2)
        by_latency = distilled_latency.route(src, dst)
        assert by_latency is not None
        # Collapsing cannot create latency shortcuts...
        assert (
            route_latency(by_latency)
            >= route_latency(target_latency.route(src, dst)) - 1e-12
        )
        # ...and never lengthens hop counts (interior traversals map
        # to single mesh pipes).
        assert len(distilled_hops.route(src, dst)) <= len(
            target_hops.route(src, dst)
        )
