"""Tests for synthetic cross traffic via pipe-parameter adjustment."""

import pytest

from repro.core import (
    CrossTrafficMatrix,
    CrossTrafficModel,
    DistillationMode,
    EmulationConfig,
    ExperimentPipeline,
)
from repro.engine import Simulator
from repro.topology import chain_topology, star_topology


def build(topology):
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(1)
        .bind(1)
        .run(EmulationConfig.reference())
    )
    return sim, emulation


def test_matrix_set_and_clear():
    matrix = CrossTrafficMatrix()
    matrix.set_demand(0, 1, 1e6)
    assert matrix.demand(0, 1) == 1e6
    assert matrix.demand(1, 0) == 0.0
    matrix.set_demand(0, 1, 0)
    assert matrix.demand(0, 1) == 0.0
    with pytest.raises(ValueError):
        matrix.set_demand(0, 1, -5)


def test_uniform_matrix():
    matrix = CrossTrafficMatrix.uniform([0, 1, 2], 5e5)
    assert len(list(matrix.pairs())) == 6
    assert matrix.demand(2, 0) == 5e5


def test_propagation_accumulates_on_shared_pipes():
    # Star: flows 0->1 and 0->2 share VN 0's access pipe.
    sim, emulation = build(star_topology(3, bandwidth_bps=10e6))
    model = CrossTrafficModel(emulation)
    matrix = CrossTrafficMatrix()
    matrix.set_demand(0, 1, 2e6)
    matrix.set_demand(0, 2, 2e6)
    adjustments = model.propagate(matrix)
    by_pipe = {adj.pipe_id: adj for adj in adjustments}
    out_pipe = emulation.lookup_pipes(0, 1)[0]
    assert by_pipe[out_pipe.id].background_bps == pytest.approx(4e6)
    assert by_pipe[out_pipe.id].bandwidth_bps == pytest.approx(6e6)


def test_apply_reduces_bandwidth_and_adds_latency():
    sim, emulation = build(
        chain_topology(1, hops=1, bandwidth_bps=10e6, latency_s=0.010)
    )
    model = CrossTrafficModel(emulation)
    matrix = CrossTrafficMatrix()
    matrix.set_demand(0, 1, 5e6)
    model.apply(matrix)
    pipe = emulation.lookup_pipes(0, 1)[0]
    assert pipe.bandwidth_bps == pytest.approx(5e6)
    assert pipe.latency_s > 0.010
    assert pipe.queue_limit < 50
    model.clear()
    assert pipe.bandwidth_bps == pytest.approx(10e6)
    assert pipe.latency_s == pytest.approx(0.010)
    assert pipe.queue_limit == 50


def test_demand_capped_below_capacity():
    sim, emulation = build(
        chain_topology(1, hops=1, bandwidth_bps=10e6, latency_s=0.010)
    )
    model = CrossTrafficModel(emulation)
    matrix = CrossTrafficMatrix()
    matrix.set_demand(0, 1, 100e6)  # 10x the pipe
    adjustments = model.apply(matrix)
    pipe = emulation.lookup_pipes(0, 1)[0]
    assert pipe.bandwidth_bps > 0
    assert adjustments[0].background_bps <= 0.95 * 10e6


def test_latency_grows_with_utilization():
    sim, emulation = build(
        chain_topology(1, hops=1, bandwidth_bps=10e6, latency_s=0.010)
    )
    model = CrossTrafficModel(emulation)
    lows = CrossTrafficMatrix()
    lows.set_demand(0, 1, 1e6)
    low_extra = model.propagate(lows)[0].extra_latency_s
    highs = CrossTrafficMatrix()
    highs.set_demand(0, 1, 9e6)
    high_extra = model.propagate(highs)[0].extra_latency_s
    assert high_extra > 10 * low_extra


def test_reapply_reverts_unloaded_pipes():
    sim, emulation = build(star_topology(3, bandwidth_bps=10e6))
    model = CrossTrafficModel(emulation)
    first = CrossTrafficMatrix()
    first.set_demand(0, 1, 5e6)
    model.apply(first)
    loaded = emulation.lookup_pipes(0, 1)[0]
    assert loaded.bandwidth_bps < 10e6
    second = CrossTrafficMatrix()
    second.set_demand(1, 2, 5e6)
    model.apply(second)
    assert loaded.bandwidth_bps == pytest.approx(10e6)


def test_scheduled_profile_changes_over_time():
    sim, emulation = build(
        chain_topology(1, hops=1, bandwidth_bps=10e6, latency_s=0.010)
    )
    model = CrossTrafficModel(emulation)
    matrix = CrossTrafficMatrix()
    matrix.set_demand(0, 1, 5e6)
    model.schedule_profile([(1.0, matrix), (2.0, None)])
    pipe = emulation.lookup_pipes(0, 1)[0]
    sim.run(until=0.5)
    assert pipe.bandwidth_bps == pytest.approx(10e6)
    sim.run(until=1.5)
    assert pipe.bandwidth_bps == pytest.approx(5e6)
    sim.run(until=2.5)
    assert pipe.bandwidth_bps == pytest.approx(10e6)


def test_cross_traffic_slows_foreground_flow():
    """End to end: a TCP flow sees reduced throughput when synthetic
    background traffic loads its path."""
    results = {}
    for label, background in (("clean", 0.0), ("loaded", 8e6)):
        sim, emulation = build(
            chain_topology(1, hops=2, bandwidth_bps=10e6, latency_s=0.010)
        )
        if background:
            model = CrossTrafficModel(emulation)
            matrix = CrossTrafficMatrix()
            matrix.set_demand(0, 1, background)
            model.apply(matrix)
        emulation.vn(1).tcp_listen(80, lambda c: None)
        conn = emulation.vn(0).tcp_connect(
            1, 80, on_established=lambda c: c.send(10_000_000)
        )
        sim.run(until=4.0)
        results[label] = conn.bytes_acked
    assert results["loaded"] < results["clean"] * 0.5
