"""Tests for queueing disciplines."""

import random

import pytest

from repro.core.queues import DropTailQueue, REDQueue


def test_droptail_admits_below_limit():
    queue = DropTailQueue()
    assert queue.admit(0, 10, 0.0, None)
    assert queue.admit(9, 10, 0.0, None)
    assert not queue.admit(10, 10, 0.0, None)
    assert not queue.admit(11, 10, 0.0, None)


def test_red_validation():
    with pytest.raises(ValueError):
        REDQueue(min_th_frac=0.8, max_th_frac=0.5)
    with pytest.raises(ValueError):
        REDQueue(max_p=0.0)


def test_red_admits_when_queue_small():
    red = REDQueue()
    rng = random.Random(1)
    assert all(red.admit(0, 100, 0.0, rng) for _ in range(50))
    assert red.early_drops == 0


def test_red_always_drops_at_hard_limit():
    red = REDQueue()
    rng = random.Random(1)
    assert not red.admit(100, 100, 0.0, rng)


def test_red_drops_probabilistically_between_thresholds():
    red = REDQueue(min_th_frac=0.1, max_th_frac=0.5, max_p=0.5)
    rng = random.Random(3)
    # Hold the instantaneous queue at 40/100 so the EWMA climbs into
    # the (10, 50) band and early drops begin.
    outcomes = [red.admit(40, 100, 0.0, rng) for _ in range(3000)]
    assert red.early_drops > 0
    assert outcomes.count(False) == red.early_drops
    assert outcomes.count(True) > 0


def test_red_average_tracks_backlog():
    red = REDQueue(weight=0.5)
    rng = random.Random(1)
    red.admit(10, 100, 0.0, rng)
    assert red.avg == pytest.approx(5.0)
    red.admit(10, 100, 0.0, rng)
    assert red.avg == pytest.approx(7.5)


def test_red_forced_drop_above_max_threshold():
    red = REDQueue(min_th_frac=0.1, max_th_frac=0.3, max_p=0.1, weight=1.0)
    rng = random.Random(1)
    # weight=1.0 makes avg equal the instantaneous backlog.
    assert not red.admit(40, 100, 0.0, rng)
    assert red.early_drops == 1


def test_red_reset():
    red = REDQueue(weight=1.0)
    red.admit(50, 100, 0.0, random.Random(1))
    assert red.avg > 0
    red.reset()
    assert red.avg == 0.0
