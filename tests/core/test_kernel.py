"""Delay-line kernel contract tests.

Two layers:

* boundary semantics of :class:`PipeScheduler` + :class:`Pipe` under
  batching, parameterized over every kernel — tick-boundary
  deadlines, stale drains after ``flush()``, same-tick cross-pipe
  ordering, and drop-tail admission while a batch is in flight;
* randomized cross-kernel parity — every kernel must produce the
  same exits, the same IEEE-double exit times, and the same
  ``head_deadline`` floats on the same admission schedule.
"""

import random

import pytest

from repro.core.kernel import KERNELS, make_delay_line, numpy_available
from repro.core.packet import PacketDescriptor
from repro.core.pipe import INFINITY, Pipe
from repro.core.scheduler import PipeScheduler
from repro.net.packet import Packet


def available_kernels():
    return [k for k in KERNELS if k != "numpy" or numpy_available()]


@pytest.fixture(params=available_kernels())
def kernel(request):
    return request.param


def descriptor(size=1000):
    return PacketDescriptor(Packet(0, 1, size, "udp"), (), 0, 0.0)


def pipe(kernel, pipe_id=0, bw=1e6, latency=0.0, queue_limit=50):
    return Pipe(pipe_id, bw, latency, queue_limit=queue_limit, kernel=kernel)


# ----------------------------------------------------------------------
# Tick-boundary deadlines
# ----------------------------------------------------------------------

def test_deadline_exactly_on_tick_boundary_matures_at_that_tick(kernel):
    # 1250 B at 1 Mb/s = 10 ms = exactly 100 ticks of 1e-4: the
    # deadline falls on a tick boundary and must mature at that wake,
    # not re-arm a same-instant wake.
    scheduler = PipeScheduler(tick_s=1e-4)
    p = pipe(kernel)
    d = descriptor(1250)
    p.arrival(d, 0.0, 0.0)
    scheduler.notify(p)
    wake = scheduler.next_wake()
    assert wake == pytest.approx(0.01)
    assert scheduler.collect(wake) == [(p, [d])]
    assert scheduler.next_wake() == INFINITY


def test_deadline_with_float_noise_above_boundary_still_matures(kernel):
    scheduler = PipeScheduler(tick_s=1e-4)
    p = pipe(kernel)
    # Force a head deadline a hair above the 693rd tick, as float
    # error produces in long runs; the slack in collect() must let
    # the wake at the quantized boundary drain it.
    p.arrival(descriptor(1250), 0.0593000000000001, 0.0593000000000001)
    scheduler.notify(p)
    wake = scheduler.next_wake()
    serviced = scheduler.collect(wake)
    assert [len(exits) for _, exits in serviced] == [1]


# ----------------------------------------------------------------------
# Stale entries after flush()
# ----------------------------------------------------------------------

def test_flush_orphans_heap_entry_and_collect_drains_it(kernel):
    scheduler = PipeScheduler(tick_s=1e-4)
    p = pipe(kernel)
    p.arrival(descriptor(1250), 0.0, 0.0)
    scheduler.notify(p)
    assert scheduler.pending_pipes == 1
    lost = p.flush()
    assert lost == 1
    assert p._line.head_deadline == INFINITY
    # The heap entry is now stale; collect must discard it without
    # servicing and leave the heap empty.
    assert scheduler.collect(1.0) == []
    assert scheduler.pending_pipes == 0
    assert scheduler.next_wake() == INFINITY


def test_admission_after_flush_starts_a_fresh_line(kernel):
    scheduler = PipeScheduler(tick_s=1e-4)
    p = pipe(kernel)
    p.arrival(descriptor(1250), 0.0, 0.0)
    scheduler.notify(p)
    p.flush()
    d = descriptor(1250)
    assert p.arrival(d, 0.02, 0.02)
    scheduler.notify(p)
    serviced = scheduler.collect(scheduler.next_wake())
    assert serviced == [(p, [d])]


# ----------------------------------------------------------------------
# Same-tick, cross-pipe interleaving
# ----------------------------------------------------------------------

def test_same_tick_departures_service_in_deadline_order(kernel):
    # Three pipes with deadlines inside one tick: collect must return
    # them in deadline order (the order downstream seq assignment —
    # and so the digest — depends on), with each pipe's run intact.
    scheduler = PipeScheduler(tick_s=1e-3)
    fast = pipe(kernel, pipe_id=0, bw=1e9)
    mid = pipe(kernel, pipe_id=1, bw=4e7)
    slow = pipe(kernel, pipe_id=2, bw=2e7)
    batches = {}
    for p in (slow, fast, mid):  # notify order != deadline order
        batches[p.id] = [descriptor(1250), descriptor(1250)]
        for d in batches[p.id]:
            p.arrival(d, 0.0, 0.0)
        scheduler.notify(p)
    serviced = scheduler.collect(1e-3)
    assert [p.id for p, _ in serviced] == [0, 1, 2]
    for p, exits in serviced:
        assert exits == batches[p.id]


def test_batch_preserves_fifo_within_pipe(kernel):
    p = pipe(kernel, bw=1e8)
    admitted = [descriptor(1250) for _ in range(16)]
    for d in admitted:
        p.arrival(d, 0.0, 0.0)
    exits = p.service(1.0)
    assert exits == admitted


# ----------------------------------------------------------------------
# Drop-tail admission while a batch is in flight
# ----------------------------------------------------------------------

def test_droptail_admission_mid_batch(kernel):
    # queue_limit counts the bandwidth queue only. Fill it, verify
    # the overflow drop, then service part of the backlog and verify
    # the freed slots admit again — bw_len must be live mid-batch.
    p = pipe(kernel, bw=1e6, queue_limit=4)
    for _ in range(4):
        assert p.arrival(descriptor(1250), 0.0, 0.0)
    assert not p.arrival(descriptor(1250), 0.0, 0.0)
    assert p.drops_overflow == 1
    assert p.backlog_pkts == 4
    # Two packets dequeue by t=0.02 (10 ms serialization each).
    p.service(0.02)
    assert p.backlog_pkts == 2
    assert p.arrival(descriptor(1250), 0.02, 0.02)
    assert p.backlog_pkts == 3


# ----------------------------------------------------------------------
# Randomized cross-kernel parity
# ----------------------------------------------------------------------

def _drive(line, schedule):
    """Run one admission/service schedule against a delay line and
    return every observable: exit ids, exit ideal times, through
    bytes, head deadlines after every step, and occupancy."""
    observed = []
    for op in schedule:
        if op[0] == "admit":
            _, ident, size, dequeue_at, ideal_exit = op
            d = descriptor(size)
            d.packet.id = ident
            line.admit(d, dequeue_at, ideal_exit)
        else:
            _, cutoff, latency = op
            exits, through = line.service(cutoff, latency)
            observed.append((
                [e.packet.id for e in exits],
                [e.ideal_time for e in exits],
                through,
            ))
        observed.append((line.head_deadline, line.bw_len, line.dl_len))
    return observed


def _random_schedule(rng, ops=400):
    schedule = []
    clock = 0.0
    free_at = 0.0
    ident = 0
    for _ in range(ops):
        clock += rng.random() * 2e-4
        if rng.random() < 0.6:
            size = rng.choice((40, 576, 1500))
            tx = size * 8.0 / 1e7
            free_at = max(free_at, clock) + tx
            schedule.append(("admit", ident, size, free_at, free_at + 1e-3))
            ident += 1
        else:
            latency = rng.choice((0.0, 1e-3, 5e-3))
            schedule.append(("service", clock, latency))
    schedule.append(("service", clock + 10.0, 0.0))
    return schedule


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_kernels_agree_on_randomized_schedules(seed):
    kernels = available_kernels()
    schedule = _random_schedule(random.Random(seed))
    results = {k: _drive(make_delay_line(k), schedule) for k in kernels}
    reference = results["scalar"]
    for name, observed in results.items():
        assert observed == reference, f"kernel {name} diverged from scalar"


def test_flush_counts_agree_across_kernels():
    counts = {}
    for name in available_kernels():
        line = make_delay_line(name)
        for i in range(7):
            line.admit(descriptor(100), 0.001 * (i + 1), 0.001 * (i + 1))
        line.service(0.0035, 0.0)
        counts[name] = (line.flush(), line.bw_len, line.dl_len,
                        line.head_deadline)
    assert len(set(counts.values())) == 1, counts
