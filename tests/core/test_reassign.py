"""Tests for dynamic pipe-to-core reassignment."""

import pytest

from repro.apps.netperf import TcpStream
from repro.core import EmulationConfig
from repro.core.assign import Assignment
from repro.core.bind import Binding
from repro.core.emulator import Emulation
from repro.core.reassign import DynamicReassigner
from repro.engine import Simulator
from repro.topology import star_topology


def adversarial_emulation():
    """A 2-core star where the static assignment is pessimal: every
    flow's two access pipes live on different cores."""
    topology = star_topology(8, bandwidth_bps=10e6, latency_s=0.005)
    clients = sorted(n.id for n in topology.clients())
    # Interleave ownership: even-indexed access links on core 0, odd
    # on core 1. Flows pair VN 2k -> VN 2k+1, so every flow crosses.
    link_to_core = {}
    for link in topology.links.values():
        client_end = link.a if link.a in clients else link.b
        link_to_core[link.id] = clients.index(client_end) % 2
    assignment = Assignment(2, link_to_core)
    binding = Binding(clients, [vn % 2 for vn in range(8)], [0, 1])
    sim = Simulator()
    emulation = Emulation(
        sim,
        topology,
        EmulationConfig(num_cores=2, num_hosts=2),
        assignment=assignment,
        binding=binding,
    )
    return sim, emulation


def test_requires_multiple_cores():
    topology = star_topology(4)
    sim = Simulator()
    emulation = Emulation(sim, topology, EmulationConfig())
    with pytest.raises(ValueError):
        DynamicReassigner(emulation)


def test_tracker_observes_crossings():
    sim, emulation = adversarial_emulation()
    reassigner = DynamicReassigner(emulation)
    streams = [TcpStream(emulation, 2 * f, 2 * f + 1) for f in range(4)]
    sim.run(until=1.0)
    assert reassigner.observed_crossings() > 0
    for stream in streams:
        stream.stop()


def test_rebalance_reduces_crossings():
    sim, emulation = adversarial_emulation()
    reassigner = DynamicReassigner(emulation, period_s=1.0)
    streams = [TcpStream(emulation, 2 * f, 2 * f + 1) for f in range(4)]
    reassigner.start()
    sim.run(until=1.0)
    tunnels_early = emulation.monitor.tunnels
    sim.run(until=6.0)
    reassigner.stop()
    # After migration, per-second tunneling collapses.
    window_start_tunnels = emulation.monitor.tunnels
    sim.run(until=8.0)
    late_rate = (emulation.monitor.tunnels - window_start_tunnels) / 2.0
    early_rate = tunnels_early / 1.0
    assert reassigner.moves > 0
    assert late_rate < 0.2 * early_rate
    for stream in streams:
        stream.stop()


def test_moves_keep_load_bounded():
    sim, emulation = adversarial_emulation()
    reassigner = DynamicReassigner(
        emulation, period_s=0.5, load_imbalance_limit=1.5
    )
    streams = [TcpStream(emulation, 2 * f, 2 * f + 1) for f in range(4)]
    reassigner.start()
    sim.run(until=5.0)
    reassigner.stop()
    loads = [0, 0]
    for pipe in emulation.pipes.values():
        loads[pipe.owner] += 1
    assert max(loads) <= 1.5 * len(emulation.pipes) / 2
    for stream in streams:
        stream.stop()


def test_traffic_still_flows_after_migration():
    sim, emulation = adversarial_emulation()
    reassigner = DynamicReassigner(emulation, period_s=0.5)
    stream = TcpStream(emulation, 0, 1)
    reassigner.start()
    sim.run(until=4.0)
    stream.mark()
    sim.run(until=8.0)
    reassigner.stop()
    # Still saturating its 10 Mb/s path after pipes moved cores.
    assert stream.throughput_bps() > 7e6
    report = emulation.accuracy_report()
    assert report.packets_delivered > 1000
