"""Tests for the emulated distance-vector routing protocol."""

import pytest

from repro.core import EmulationConfig
from repro.core.emulator import Emulation
from repro.core.routing_emulation import (
    INFINITY_METRIC,
    DistanceVectorRouting,
)
from repro.engine import Simulator
from repro.topology import NodeKind, Topology, ring_topology


def build_square():
    """c0 - r1 - c3 with an alternate path c0 - r2 - c3."""
    topology = Topology()
    c0 = topology.add_node(NodeKind.CLIENT)
    r1 = topology.add_node(NodeKind.STUB)
    r2 = topology.add_node(NodeKind.STUB)
    c3 = topology.add_node(NodeKind.CLIENT)
    topology.add_link(c0.id, r1.id, 10e6, 0.002)
    topology.add_link(r1.id, c3.id, 10e6, 0.002)
    topology.add_link(c0.id, r2.id, 10e6, 0.002)
    topology.add_link(r2.id, c3.id, 10e6, 0.002)
    return topology


def test_converged_start_matches_bfs():
    topology = build_square()
    sim = Simulator()
    protocol = DistanceVectorRouting(sim, topology)
    assert protocol.is_converged()
    assert protocol.distance[0][3] == 2
    route = protocol.route(0, 3)
    assert route is not None
    assert len(route) == 2


def test_route_to_self_is_empty():
    sim = Simulator()
    protocol = DistanceVectorRouting(sim, build_square())
    assert protocol.route(2, 2) == ()


def test_cold_start_converges_via_messages():
    topology = build_square()
    sim = Simulator()
    protocol = DistanceVectorRouting(sim, topology, converged_start=False)
    assert not protocol.is_converged()
    sim.run(until=5.0)
    assert protocol.is_converged()
    assert protocol.messages_sent > 0
    assert protocol.bytes_sent > 0


def test_failure_causes_transient_blackhole_then_reroute():
    topology = build_square()
    sim = Simulator()
    protocol = DistanceVectorRouting(sim, topology, processing_delay_s=0.05)
    link = topology.link_between(0, 1)
    # Before failure: route via r1 or r2 (both 2 hops).
    assert len(protocol.route(0, 3)) == 2

    protocol.link_failed(link)
    # 0 detects instantly: if its route used r1, destination r1 (and
    # possibly 3) is momentarily unreachable from 0.
    assert protocol.distance[0][1] == INFINITY_METRIC or protocol.route(0, 3)

    sim.run(until=10.0)
    assert protocol.is_converged()
    route = protocol.route(0, 3)
    assert [hop.dst for hop in route] == [2, 3]
    assert protocol.route(0, 1) is not None  # r1 still reachable via c3


def test_convergence_takes_protocol_time():
    topology = ring_topology(num_routers=8, vns_per_router=1)
    sim = Simulator()
    protocol = DistanceVectorRouting(sim, topology, processing_delay_s=0.1)
    ring_link = topology.link_between(0, 1)
    protocol.link_failed(ring_link)
    assert not protocol.is_converged()
    # After one processing delay it still hasn't fully converged
    # (news must cross several hops).
    sim.run(until=0.15)
    assert not protocol.is_converged()
    sim.run(until=30.0)
    assert protocol.is_converged()


def test_recovery_restores_short_routes():
    topology = build_square()
    sim = Simulator()
    protocol = DistanceVectorRouting(sim, topology)
    link = topology.link_between(0, 1)
    protocol.link_failed(link)
    sim.run(until=10.0)
    protocol.link_recovered(link)
    sim.run(until=10.0 + 10.0)
    assert protocol.is_converged()
    assert protocol.distance[0][1] == 1


def test_partition_reports_unreachable():
    topology = Topology()
    a = topology.add_node(NodeKind.CLIENT)
    b = topology.add_node(NodeKind.CLIENT)
    link = topology.add_link(a.id, b.id, 1e6, 0.001)
    sim = Simulator()
    protocol = DistanceVectorRouting(sim, topology)
    protocol.link_failed(link)
    sim.run(until=5.0)
    assert protocol.route(0, 1) is None
    assert protocol.distance[0][1] == INFINITY_METRIC


def test_emulation_with_dv_routing_delivers_and_reroutes():
    """End to end: packets flow under DV routing; a failure causes a
    transient unroutable window before delivery resumes."""
    topology = build_square()
    sim = Simulator()
    protocol = DistanceVectorRouting(sim, topology, processing_delay_s=0.05)
    emulation = Emulation(
        sim, topology, EmulationConfig.reference(), routing=protocol
    )
    received = []
    emulation.vn(1).udp_socket(port=9, on_receive=lambda *a: received.append(sim.now))
    sender = emulation.vn(0).udp_socket()

    sender.send_to(1, 9, 100)
    link = topology.link_between(0, 1)
    sim.at(1.0, protocol.link_failed, link)
    # Immediately after the failure the route may blackhole...
    sim.at(1.01, sender.send_to, 1, 9, 100)
    # ...but after convergence traffic flows via r2.
    sim.at(5.0, sender.send_to, 1, 9, 100)
    sim.run(until=10.0)
    assert len(received) >= 2
    assert received[0] < 1.0
    assert any(when > 5.0 for when in received)


def test_poison_reverse_damps_count_to_infinity():
    """A chain: after cutting the far end, metrics go straight to
    infinity rather than counting up slowly."""
    topology = Topology()
    nodes = [topology.add_node(NodeKind.STUB) for _ in range(4)]
    links = [
        topology.add_link(nodes[i].id, nodes[i + 1].id, 1e6, 0.001)
        for i in range(3)
    ]
    sim = Simulator()
    protocol = DistanceVectorRouting(sim, topology, processing_delay_s=0.01)
    protocol.link_failed(links[2])  # cut node 3 off
    sim.run(until=20.0)
    assert protocol.is_converged()
    for node in range(3):
        assert protocol.distance[node][3] == INFINITY_METRIC
    # Messages stayed bounded (no prolonged counting war).
    assert protocol.messages_sent < 200
