"""Tests for topology-to-core assignment."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Assignment, assign_by_vn_groups, greedy_k_clusters
from repro.core.assign import cross_core_hops, single_core
from repro.routing import CachedRouting
from repro.topology import (
    TopologyError,
    ring_topology,
    star_topology,
    transit_stub_topology,
    TransitStubSpec,
)


def test_single_core_covers_all_links():
    topology = ring_topology(num_routers=4, vns_per_router=2)
    assignment = single_core(topology)
    assert assignment.num_cores == 1
    assert set(assignment.link_to_core) == set(topology.links)


def test_invalid_assignment_rejected():
    with pytest.raises(TopologyError):
        Assignment(0, {})
    with pytest.raises(TopologyError):
        Assignment(2, {0: 5})


def test_greedy_covers_all_links():
    topology = ring_topology(num_routers=8, vns_per_router=4)
    assignment = greedy_k_clusters(topology, 4, random.Random(1))
    assert set(assignment.link_to_core) == set(topology.links)
    assert all(0 <= c < 4 for c in assignment.link_to_core.values())


def test_greedy_balances_load_roughly():
    topology = ring_topology(num_routers=8, vns_per_router=4)
    assignment = greedy_k_clusters(topology, 4, random.Random(1))
    balance = assignment.load_balance()
    assert sum(balance) == topology.num_links
    # Round-robin greedy growth keeps clusters within a few links of
    # each other (the last round may starve stuck clusters).
    assert max(balance) - min(balance) <= 0.5 * (
        topology.num_links / len(balance)
    )


def test_greedy_single_core_shortcut():
    topology = star_topology(4)
    assignment = greedy_k_clusters(topology, 1, random.Random(0))
    assert assignment.num_cores == 1


def test_greedy_more_cores_than_nodes_rejected():
    topology = star_topology(2)
    with pytest.raises(TopologyError):
        greedy_k_clusters(topology, 10, random.Random(0))


def test_greedy_handles_disconnected_topology():
    import repro.topology as rt

    topology = rt.Topology()
    for _ in range(6):
        topology.add_node()
    topology.add_link(0, 1, 1e6, 1e-3)
    topology.add_link(2, 3, 1e6, 1e-3)
    topology.add_link(4, 5, 1e6, 1e-3)
    assignment = greedy_k_clusters(topology, 2, random.Random(3))
    assert len(assignment.link_to_core) == 3


def test_greedy_clusters_are_connected():
    """The heuristic's point: each cluster's links should form few
    connected blobs, keeping consecutive pipes co-located."""
    spec = TransitStubSpec()
    topology = transit_stub_topology(spec, random.Random(9))
    assignment = greedy_k_clusters(topology, 4, random.Random(9))
    routing = CachedRouting(topology, weight="latency")
    clients = sorted(n.id for n in topology.clients())
    rng = random.Random(1)
    routes = [
        routing.route(*rng.sample(clients, 2)) for _ in range(100)
    ]
    fraction = cross_core_hops(topology, assignment, routes)
    # A random link assignment would cross on ~75% of consecutive
    # pairs with 4 cores; the greedy clusters must beat that clearly.
    assert fraction < 0.6


def test_assign_by_vn_groups():
    topology = star_topology(8)
    clients = sorted(n.id for n in topology.clients())
    groups = [clients[:4], clients[4:]]
    assignment = assign_by_vn_groups(topology, groups)
    assert assignment.num_cores == 2
    for link in topology.links.values():
        client_end = link.a if link.a in clients else link.b
        expected = 0 if client_end in groups[0] else 1
        assert assignment.core_of(link.id) == expected


def test_assign_by_vn_groups_spreads_interior_links():
    topology = ring_topology(num_routers=4, vns_per_router=1)
    clients = sorted(n.id for n in topology.clients())
    assignment = assign_by_vn_groups(
        topology, [clients[:2], clients[2:]]
    )
    # Ring links touch no client; they are spread by load.
    balance = assignment.load_balance()
    assert sum(balance) == topology.num_links


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), cores=st.integers(1, 6))
def test_property_every_link_assigned_exactly_once(seed, cores):
    topology = ring_topology(num_routers=6, vns_per_router=3)
    assignment = greedy_k_clusters(topology, cores, random.Random(seed))
    assert sorted(assignment.link_to_core) == sorted(topology.links)
    assert sum(assignment.load_balance()) == topology.num_links
