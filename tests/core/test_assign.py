"""Tests for topology-to-core assignment."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import Assignment, assign_by_vn_groups, greedy_k_clusters
from repro.core.assign import cross_core_hops, single_core
from repro.routing import CachedRouting
from repro.topology import (
    TopologyError,
    ring_topology,
    star_topology,
    transit_stub_topology,
    TransitStubSpec,
)


def test_single_core_covers_all_links():
    topology = ring_topology(num_routers=4, vns_per_router=2)
    assignment = single_core(topology)
    assert assignment.num_cores == 1
    assert set(assignment.link_to_core) == set(topology.links)


def test_invalid_assignment_rejected():
    with pytest.raises(TopologyError):
        Assignment(0, {})
    with pytest.raises(TopologyError):
        Assignment(2, {0: 5})


def test_assignment_rejects_non_int_and_negative_cores():
    with pytest.raises(TopologyError, match="valid cores: 0..1"):
        Assignment(2, {0: -1})
    with pytest.raises(TopologyError, match="invalid core"):
        Assignment(2, {0: "0"})


def test_assignment_rejects_empty_core():
    # Core 1 owns nothing: a partitioned engine would idle its domain.
    with pytest.raises(TopologyError, match="own no links"):
        Assignment(2, {0: 0, 1: 0})
    # ...unless the caller says the lopsidedness is deliberate.
    assignment = Assignment(2, {0: 0, 1: 0}, allow_empty_cores=True)
    assert assignment.load_balance() == [2, 0]
    # A fully empty assignment never trips the emptiness check.
    assert Assignment(3, {}).load_balance() == [0, 0, 0]


def test_assignment_rejects_links_absent_from_topology():
    topology = star_topology(2)
    known = sorted(topology.links)
    bogus = max(known) + 100
    with pytest.raises(TopologyError, match=f"{bogus}"):
        Assignment(
            1, {known[0]: 0, bogus: 0}, topology=topology
        )


def test_greedy_covers_all_links():
    topology = ring_topology(num_routers=8, vns_per_router=4)
    assignment = greedy_k_clusters(topology, 4, random.Random(1))
    assert set(assignment.link_to_core) == set(topology.links)
    assert all(0 <= c < 4 for c in assignment.link_to_core.values())


def test_greedy_balances_load_roughly():
    topology = ring_topology(num_routers=8, vns_per_router=4)
    assignment = greedy_k_clusters(topology, 4, random.Random(1))
    balance = assignment.load_balance()
    assert sum(balance) == topology.num_links
    # Round-robin greedy growth keeps clusters within a few links of
    # each other (the last round may starve stuck clusters).
    assert max(balance) - min(balance) <= 0.5 * (
        topology.num_links / len(balance)
    )


def test_greedy_single_core_shortcut():
    topology = star_topology(4)
    assignment = greedy_k_clusters(topology, 1, random.Random(0))
    assert assignment.num_cores == 1


def test_greedy_more_cores_than_nodes_rejected():
    topology = star_topology(2)
    with pytest.raises(TopologyError):
        greedy_k_clusters(topology, 10, random.Random(0))


def test_greedy_handles_disconnected_topology():
    import repro.topology as rt

    topology = rt.Topology()
    for _ in range(6):
        topology.add_node()
    topology.add_link(0, 1, 1e6, 1e-3)
    topology.add_link(2, 3, 1e6, 1e-3)
    topology.add_link(4, 5, 1e6, 1e-3)
    assignment = greedy_k_clusters(topology, 2, random.Random(3))
    assert len(assignment.link_to_core) == 3
    assert sorted(assignment.link_to_core) == sorted(topology.links)


def test_greedy_disconnected_many_components_balances():
    """With more components than cores, the re-seeding path must keep
    taking one link per cluster per round, so no core is starved even
    though no cluster can ever bridge components."""
    import repro.topology as rt

    topology = rt.Topology()
    for _ in range(12):
        topology.add_node()
    for pair in range(6):  # six disjoint two-node islands
        topology.add_link(2 * pair, 2 * pair + 1, 1e6, 1e-3)
    for seed in range(5):
        assignment = greedy_k_clusters(topology, 3, random.Random(seed))
        assert sorted(assignment.link_to_core) == sorted(topology.links)
        assert assignment.load_balance() == [2, 2, 2]


def test_cross_core_hops_hand_computed():
    """Chain 0-1-2-3-4, split 2+2 across two cores: the one route
    crosses cores exactly once in its three consecutive-pipe pairs."""
    import repro.topology as rt

    topology = rt.Topology()
    for _ in range(5):
        topology.add_node()
    chain_links = [
        topology.add_link(i, i + 1, 1e6, 1e-3).id for i in range(4)
    ]
    assignment = Assignment(
        2,
        {
            chain_links[0]: 0,
            chain_links[1]: 0,
            chain_links[2]: 1,
            chain_links[3]: 1,
        },
        topology=topology,
    )
    route = CachedRouting(topology).route(0, 4)
    assert [hop.link.id for hop in route] == chain_links
    assert cross_core_hops(topology, assignment, [route]) == pytest.approx(1 / 3)
    # Same route on a single core never crosses.
    assert cross_core_hops(topology, single_core(topology), [route]) == 0.0
    # No consecutive pairs at all -> defined as 0, not a ZeroDivision.
    assert cross_core_hops(topology, assignment, [route[:1]]) == 0.0


def test_load_balance_counts():
    topology = star_topology(4)
    link_ids = sorted(topology.links)
    assignment = Assignment(
        3,
        {link_ids[0]: 0, link_ids[1]: 0, link_ids[2]: 1, link_ids[3]: 2},
        topology=topology,
    )
    assert assignment.load_balance() == [2, 1, 1]
    assert assignment.links_of_core(0) == link_ids[:2]


def test_greedy_clusters_are_connected():
    """The heuristic's point: each cluster's links should form few
    connected blobs, keeping consecutive pipes co-located."""
    spec = TransitStubSpec()
    topology = transit_stub_topology(spec, random.Random(9))
    assignment = greedy_k_clusters(topology, 4, random.Random(9))
    routing = CachedRouting(topology, weight="latency")
    clients = sorted(n.id for n in topology.clients())
    rng = random.Random(1)
    routes = [
        routing.route(*rng.sample(clients, 2)) for _ in range(100)
    ]
    fraction = cross_core_hops(topology, assignment, routes)
    # A random link assignment would cross on ~75% of consecutive
    # pairs with 4 cores; the greedy clusters must beat that clearly.
    assert fraction < 0.6


def test_assign_by_vn_groups():
    topology = star_topology(8)
    clients = sorted(n.id for n in topology.clients())
    groups = [clients[:4], clients[4:]]
    assignment = assign_by_vn_groups(topology, groups)
    assert assignment.num_cores == 2
    for link in topology.links.values():
        client_end = link.a if link.a in clients else link.b
        expected = 0 if client_end in groups[0] else 1
        assert assignment.core_of(link.id) == expected


def test_assign_by_vn_groups_spreads_interior_links():
    topology = ring_topology(num_routers=4, vns_per_router=1)
    clients = sorted(n.id for n in topology.clients())
    assignment = assign_by_vn_groups(
        topology, [clients[:2], clients[2:]]
    )
    # Ring links touch no client; they are spread by load.
    balance = assignment.load_balance()
    assert sum(balance) == topology.num_links


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 1000), cores=st.integers(1, 6))
def test_property_every_link_assigned_exactly_once(seed, cores):
    topology = ring_topology(num_routers=6, vns_per_router=3)
    assignment = greedy_k_clusters(topology, cores, random.Random(seed))
    assert sorted(assignment.link_to_core) == sorted(topology.links)
    assert sum(assignment.load_balance()) == topology.num_links
