"""Unit tests for pipe mechanics (bandwidth queue + delay line)."""

import random

import pytest

from repro.core.packet import PacketDescriptor
from repro.core.pipe import INFINITY, Pipe
from repro.net.packet import Packet


def make_descriptor(size=1000, src=0, dst=1):
    packet = Packet(src, dst, size, "udp")
    return PacketDescriptor(packet, (), 0, 0.0)


def make_pipe(bw=1e6, lat=0.01, **kwargs):
    return Pipe(0, bw, lat, **kwargs)


def test_single_packet_timing():
    pipe = make_pipe(bw=1e6, lat=0.01)
    descriptor = make_descriptor(size=1250)  # 10 ms serialization at 1 Mb/s
    assert pipe.arrival(descriptor, 0.0, 0.0)
    assert pipe.next_deadline() == pytest.approx(0.01)  # dequeue time
    assert pipe.service(0.005) == []
    assert pipe.service(0.0199) == []  # still in the delay line
    exits = pipe.service(0.02)
    assert exits == [descriptor]
    assert descriptor.ideal_time == pytest.approx(0.02)
    assert pipe.next_deadline() == INFINITY


def test_fifo_serialization_of_queue():
    pipe = make_pipe(bw=1e6, lat=0.0)
    first = make_descriptor(size=1250)
    second = make_descriptor(size=1250)
    pipe.arrival(first, 0.0, 0.0)
    pipe.arrival(second, 0.0, 0.0)
    assert pipe.backlog_pkts == 2
    assert pipe.service(0.01) == [first]
    assert pipe.service(0.02) == [second]


def test_queue_overflow_virtual_drop():
    pipe = make_pipe(queue_limit=2)
    accepted = [pipe.arrival(make_descriptor(), 0.0, 0.0) for _ in range(4)]
    assert accepted == [True, True, False, False]
    assert pipe.drops_overflow == 2
    assert pipe.arrivals == 4


def test_queue_drains_allow_new_arrivals():
    pipe = make_pipe(bw=1e6, lat=0.0, queue_limit=1)
    pipe.arrival(make_descriptor(size=1250), 0.0, 0.0)
    assert not pipe.arrival(make_descriptor(size=1250), 0.001, 0.001)
    pipe.service(0.01)
    assert pipe.arrival(make_descriptor(size=1250), 0.01, 0.01)


def test_random_loss():
    pipe = make_pipe(loss_rate=0.5, queue_limit=1000)
    rng = random.Random(42)
    results = [pipe.arrival(make_descriptor(), 0.0, 0.0, rng) for _ in range(200)]
    dropped = results.count(False)
    assert 60 < dropped < 140
    assert pipe.drops_random == dropped
    assert pipe.drops_overflow == 0


def test_down_pipe_drops_everything():
    pipe = make_pipe()
    pipe.up = False
    assert not pipe.arrival(make_descriptor(), 0.0, 0.0)
    assert pipe.drops_down == 1


def test_delay_line_holds_bandwidth_delay_product():
    # 10 packets back to back: each dequeues 1 ms apart, exits
    # latency later; the delay line holds ~latency/tx_time packets.
    pipe = make_pipe(bw=1e7, lat=0.005)  # tx=0.8ms for 1000B
    for _ in range(10):
        pipe.arrival(make_descriptor(size=1000), 0.0, 0.0)
    pipe.service(0.00481)  # 6 packets dequeued (at .8,1.6,...,4.8 ms)
    assert pipe.in_flight == 10
    assert pipe.backlog_pkts == 4


def test_ideal_time_tracks_exact_exit():
    pipe = make_pipe(bw=1e6, lat=0.01)
    descriptor = make_descriptor(size=1250)
    # Scheduled arrival is quantized later than the ideal arrival.
    pipe.arrival(descriptor, 0.0001, 0.0)
    exits = pipe.service(1.0)
    assert exits == [descriptor]
    # Ideal exit ignores the quantization of the scheduled arrival.
    assert descriptor.ideal_time == pytest.approx(0.02)


def test_idle_pipe_resets_serializer():
    pipe = make_pipe(bw=1e6, lat=0.0)
    a = make_descriptor(size=1250)
    pipe.arrival(a, 0.0, 0.0)
    pipe.service(1.0)
    b = make_descriptor(size=1250)
    pipe.arrival(b, 5.0, 5.0)
    assert pipe.next_deadline() == pytest.approx(5.01)


def test_set_params_validation():
    pipe = make_pipe()
    with pytest.raises(ValueError):
        pipe.set_params(bandwidth_bps=0)
    with pytest.raises(ValueError):
        pipe.set_params(latency_s=-1)
    with pytest.raises(ValueError):
        pipe.set_params(loss_rate=1.5)
    with pytest.raises(ValueError):
        pipe.set_params(queue_limit=0)


def test_set_params_affects_new_arrivals_only():
    pipe = make_pipe(bw=1e6, lat=0.0)
    first = make_descriptor(size=1250)
    pipe.arrival(first, 0.0, 0.0)
    pipe.set_params(bandwidth_bps=2e6)
    second = make_descriptor(size=1250)
    pipe.arrival(second, 0.0, 0.0)
    # First keeps its 10 ms dequeue; second takes 5 ms after it.
    assert pipe.service(0.0099) == []
    assert pipe.service(0.01) == [first]
    assert pipe.service(0.015) == [second]


def test_counters():
    pipe = make_pipe(bw=1e9, lat=0.0)
    for _ in range(5):
        pipe.arrival(make_descriptor(size=2000), 0.0, 0.0)
    pipe.service(1.0)
    assert pipe.departures == 5
    assert pipe.bytes_through == 10_000


def test_bytes_accepted_at_admit_bytes_through_at_departure():
    # Regression: bytes_through used to be counted at admission, so a
    # flushed queue inflated the delivered-throughput view.
    pipe = make_pipe(bw=1e9, lat=0.0)
    for _ in range(3):
        assert pipe.arrival(make_descriptor(size=2000), 0.0, 0.0)
    assert pipe.bytes_accepted == 6000
    assert pipe.bytes_through == 0  # nothing has departed yet
    pipe.service(1.0)
    assert pipe.bytes_through == 6000


def test_flushed_packets_never_count_as_through():
    pipe = make_pipe(bw=1e3, lat=0.01)  # slow: packets stay queued
    for _ in range(4):
        assert pipe.arrival(make_descriptor(size=1000), 0.0, 0.0)
    pipe.flush()
    assert pipe.bytes_accepted == 4000
    assert pipe.bytes_through == 0
    assert pipe.service(100.0) == []


def test_flush_resets_sched_hint():
    # Regression: flush() left _sched_hint at the dead entry's
    # deadline, so a post-flush arrival with a later deadline was
    # shadowed by the orphaned heap entry and never rescheduled.
    from repro.core.scheduler import PipeScheduler

    scheduler = PipeScheduler(tick_s=0.0)
    pipe = make_pipe(bw=1e6, lat=0.0)
    pipe.arrival(make_descriptor(size=1250), 0.0, 0.0)
    scheduler.notify(pipe)
    assert scheduler.earliest_deadline() == pytest.approx(0.01)
    pipe.flush()
    assert pipe._sched_hint == INFINITY
    assert scheduler.earliest_deadline() == INFINITY  # orphan discarded
    pipe.arrival(make_descriptor(size=2500), 5.0, 5.0)
    scheduler.notify(pipe)
    assert scheduler.earliest_deadline() == pytest.approx(5.02)
    serviced = scheduler.collect(5.02)
    assert len(serviced) == 1 and len(serviced[0][1]) == 1


def test_transmission_time_memo_tracks_bandwidth_changes():
    pipe = make_pipe(bw=1e6, lat=0.0)
    assert pipe.transmission_time(1250) == pytest.approx(0.01)
    assert pipe.transmission_time(1250) == pytest.approx(0.01)  # memo hit
    pipe.set_params(bandwidth_bps=2e6)
    assert pipe.transmission_time(1250) == pytest.approx(0.005)
    pipe.set_params(bandwidth_bps=2e6)  # unchanged: memo survives
    assert pipe.transmission_time(2500) == pytest.approx(0.01)


def test_descriptor_pool_recycles_released_descriptors():
    from repro.core.packet import POOL

    POOL.clear()
    first = PacketDescriptor.acquire(Packet(1, 2, 500, "udp"), (), 0, 0.0)
    assert first.slot == 0  # owns a dense slot in the table
    first.release()
    assert POOL.free == [0]  # parked as a recycled slot index
    packet = Packet(3, 4, 800, "udp")
    second = PacketDescriptor.acquire(packet, (), 1, 2.0)
    assert second is first  # recycled, not reallocated
    assert not POOL.free
    assert second.packet is packet
    assert second.hop_index == 0
    assert second.entry_core == 1
    assert second.entered_at == 2.0
    assert second.ideal_time == 2.0
    assert second.tunnel_hops == 0
    POOL.clear()


def test_descriptor_pool_overflow_stays_unpooled():
    from repro.core.packet import DescriptorPool

    pool = DescriptorPool(limit=1)
    a = pool.acquire(Packet(0, 1, 100, "udp"), (), 0, 0.0)
    b = pool.acquire(Packet(0, 1, 100, "udp"), (), 0, 0.0)
    assert a.slot == 0
    assert b.slot == -1  # beyond capacity: left to the collector
    b.release()
    assert not pool.free  # module POOL untouched by the overflow


def test_descriptor_release_after_pool_reset_is_safe():
    from repro.core.packet import POOL

    POOL.clear()
    survivor = PacketDescriptor.acquire(Packet(0, 1, 64, "udp"), (), 0, 0.0)
    POOL.clear()
    survivor.release()  # stale slot index must not be re-enqueued
    assert not POOL.free
    POOL.clear()
