"""Tests for hierarchical (gateway-based) routing tables."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import CachedRouting, route_latency
from repro.routing.hierarchical import HierarchicalRouting, _snip_cycles
from repro.routing.shortest_path import Hop
from repro.topology import (
    TransitStubSpec,
    ring_topology,
    transit_stub_topology,
)


def build_ts(seed=3):
    spec = TransitStubSpec(
        transit_nodes_per_domain=3,
        stub_domains_per_transit_node=2,
        stub_nodes_per_domain=4,
        clients_per_stub_node=2,
    )
    return transit_stub_topology(spec, random.Random(seed))


def assert_route_valid(topology, route, src, dst):
    assert route[0].src == src
    assert route[-1].dst == dst
    for hop in route:
        assert hop.link.other(hop.src) == hop.dst
        assert hop.link.up
    for earlier, later in zip(route, route[1:]):
        assert earlier.dst == later.src
    # Simple path: no repeated nodes.
    nodes = [route[0].src] + [hop.dst for hop in route]
    assert len(nodes) == len(set(nodes))


def test_routes_are_valid_simple_paths():
    topology = build_ts()
    routing = HierarchicalRouting(topology)
    clients = sorted(n.id for n in topology.clients())
    rng = random.Random(1)
    for _ in range(40):
        src, dst = rng.sample(clients, 2)
        route = routing.route(src, dst)
        assert route is not None
        assert_route_valid(topology, route, src, dst)


def test_clusters_follow_stub_domains():
    topology = build_ts()
    routing = HierarchicalRouting(topology)
    domains = {n.attrs["domain"] for n in topology.clients()}
    assert routing.num_clusters == len(domains)


def test_storage_far_below_flat_matrix():
    topology = build_ts()
    routing = HierarchicalRouting(topology)
    assert routing.table_entries() < 0.5 * routing.flat_matrix_entries()


def test_stretch_is_bounded():
    """Hierarchical routes may detour via the gateway but stay within
    a small factor of the true shortest path."""
    topology = build_ts()
    hierarchical = HierarchicalRouting(topology)
    optimal = CachedRouting(topology)
    clients = sorted(n.id for n in topology.clients())
    rng = random.Random(2)
    stretches = []
    for _ in range(40):
        src, dst = rng.sample(clients, 2)
        h_route = hierarchical.route(src, dst)
        o_route = optimal.route(src, dst)
        stretch = route_latency(h_route) / max(1e-12, route_latency(o_route))
        assert stretch >= 1.0 - 1e-9
        stretches.append(stretch)
    assert sum(stretches) / len(stretches) < 1.5


def test_same_cluster_routing():
    topology = build_ts()
    routing = HierarchicalRouting(topology)
    # Two clients on the same stub node share a cluster; the route
    # between them stays short.
    by_domain = {}
    for node in topology.clients():
        by_domain.setdefault(node.attrs["domain"], []).append(node.id)
    members = next(m for m in by_domain.values() if len(m) >= 2)
    route = routing.route(members[0], members[1])
    assert route is not None
    assert len(route) <= 4


def test_route_to_self():
    topology = build_ts()
    routing = HierarchicalRouting(topology)
    client = topology.clients()[0].id
    assert routing.route(client, client) == ()


def test_invalidate_and_failure():
    topology = ring_topology(num_routers=6, vns_per_router=2)
    routing = HierarchicalRouting(topology)
    clients = sorted(n.id for n in topology.clients())
    route = routing.route(clients[0], clients[-1])
    assert route is not None
    # Fail a link on the path and reroute.
    route[len(route) // 2].link.up = False
    routing.invalidate()
    rerouted = routing.route(clients[0], clients[-1])
    assert rerouted is not None
    assert all(hop.link.up for hop in rerouted)


def test_snip_cycles_unit():
    import repro.topology as rt

    topology = rt.Topology()
    for _ in range(4):
        topology.add_node()
    ab = topology.add_link(0, 1, 1e6, 1e-3)
    bc = topology.add_link(1, 2, 1e6, 1e-3)
    cb = topology.add_link(2, 1, 1e6, 1e-3)
    bd = topology.add_link(1, 3, 1e6, 1e-3)
    walk = [Hop(ab, 0, 1), Hop(bc, 1, 2), Hop(cb, 2, 1), Hop(bd, 1, 3)]
    snipped = _snip_cycles(walk)
    assert [hop.dst for hop in snipped] == [1, 3]


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 500))
def test_property_reachability_matches_flat(seed):
    topology = build_ts(seed)
    hierarchical = HierarchicalRouting(topology)
    flat = CachedRouting(topology)
    clients = sorted(n.id for n in topology.clients())
    rng = random.Random(seed)
    for _ in range(10):
        src, dst = rng.sample(clients, 2)
        assert (hierarchical.route(src, dst) is None) == (
            flat.route(src, dst) is None
        )
