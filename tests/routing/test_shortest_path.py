"""Tests for Dijkstra and route utilities, cross-checked vs networkx."""

import random

import networkx as nx
import pytest
from hypothesis import given, settings, strategies as st

from repro.routing import (
    dijkstra,
    extract_route,
    route_bottleneck_bandwidth,
    route_cost,
    route_latency,
    route_reliability,
    RouteError,
)
from repro.topology import Topology, waxman_topology


def build_diamond():
    """0 -(fast)- 1 -(fast)- 3, and a slow shortcut 0 -2- 3."""
    topology = Topology()
    for _ in range(4):
        topology.add_node()
    topology.add_link(0, 1, 10e6, 0.001, cost=5)
    topology.add_link(1, 3, 10e6, 0.001, cost=5)
    topology.add_link(0, 2, 1e6, 0.010, loss_rate=0.1, cost=1)
    topology.add_link(2, 3, 1e6, 0.010, loss_rate=0.1, cost=1)
    return topology


def test_latency_weight_prefers_fast_path():
    topology = build_diamond()
    _dist, prev = dijkstra(topology, 0, weight="latency")
    route = extract_route(prev, 0, 3)
    assert [hop.dst for hop in route] == [1, 3]
    assert route_latency(route) == pytest.approx(0.002)


def test_cost_weight_prefers_cheap_path():
    topology = build_diamond()
    _dist, prev = dijkstra(topology, 0, weight="cost")
    route = extract_route(prev, 0, 3)
    assert [hop.dst for hop in route] == [2, 3]
    assert route_cost(route) == pytest.approx(2.0)


def test_hops_weight():
    topology = build_diamond()
    dist, _prev = dijkstra(topology, 0, weight="hops")
    assert dist[3] == pytest.approx(2.0)


def test_callable_weight():
    topology = build_diamond()
    dist, _ = dijkstra(topology, 0, weight=lambda link: 1.0 / link.bandwidth_bps)
    assert dist[1] == pytest.approx(1e-7)


def test_unknown_weight_raises():
    topology = build_diamond()
    with pytest.raises(RouteError):
        dijkstra(topology, 0, weight="banana")


def test_route_to_self_is_empty():
    topology = build_diamond()
    _dist, prev = dijkstra(topology, 0)
    assert extract_route(prev, 0, 0) == ()


def test_unreachable_is_none():
    topology = Topology()
    topology.add_node()
    topology.add_node()
    _dist, prev = dijkstra(topology, 0)
    assert extract_route(prev, 0, 1) is None


def test_down_links_excluded():
    topology = build_diamond()
    topology.link_between(0, 1).up = False
    _dist, prev = dijkstra(topology, 0, weight="latency")
    route = extract_route(prev, 0, 3)
    assert [hop.dst for hop in route] == [2, 3]


def test_route_metrics():
    topology = build_diamond()
    _dist, prev = dijkstra(topology, 0, weight="cost")
    route = extract_route(prev, 0, 3)
    assert route_bottleneck_bandwidth(route) == pytest.approx(1e6)
    assert route_reliability(route) == pytest.approx(0.81)
    assert route_bottleneck_bandwidth(()) == float("inf")
    assert route_reliability(()) == 1.0


def test_hop_direction():
    topology = build_diamond()
    _dist, prev = dijkstra(topology, 3, weight="latency")
    route = extract_route(prev, 3, 0)
    assert route[0].src == 3
    assert route[-1].dst == 0
    for earlier, later in zip(route, route[1:]):
        assert earlier.dst == later.src


def _to_networkx(topology):
    graph = nx.Graph()
    for node_id in topology.nodes:
        graph.add_node(node_id)
    for link in topology.links.values():
        if link.up:
            existing = graph.get_edge_data(link.a, link.b)
            if existing is None or existing["weight"] > link.latency_s:
                graph.add_edge(link.a, link.b, weight=link.latency_s)
    return graph


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 5000), routers=st.integers(3, 25))
def test_distances_match_networkx(seed, routers):
    topology = waxman_topology(routers, random.Random(seed))
    graph = _to_networkx(topology)
    source = min(topology.nodes)
    dist, prev = dijkstra(topology, source, weight="latency")
    expected = nx.single_source_dijkstra_path_length(graph, source)
    assert set(dist) == set(expected)
    for node, d in expected.items():
        assert dist[node] == pytest.approx(d)
        route = extract_route(prev, source, node)
        assert route_latency(route) == pytest.approx(d)
