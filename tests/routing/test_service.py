"""Tests for routing services (matrix, cache, dynamic wrapper)."""

import pytest

from repro.routing import (
    CachedRouting,
    DynamicRouting,
    PrecomputedRouting,
    RouteError,
)
from repro.topology import NodeKind, Topology, ring_topology


def build_square():
    """Clients 0 and 3 on opposite corners of a router square."""
    topology = Topology()
    c0 = topology.add_node(NodeKind.CLIENT)
    r1 = topology.add_node(NodeKind.STUB)
    r2 = topology.add_node(NodeKind.STUB)
    c3 = topology.add_node(NodeKind.CLIENT)
    topology.add_link(c0.id, r1.id, 1e6, 0.001)
    topology.add_link(c0.id, r2.id, 1e6, 0.005)
    topology.add_link(r1.id, c3.id, 1e6, 0.001)
    topology.add_link(r2.id, c3.id, 1e6, 0.005)
    return topology


def test_precomputed_routes_all_client_pairs():
    topology = build_square()
    routing = PrecomputedRouting(topology)
    route = routing.route(0, 3)
    assert [hop.dst for hop in route] == [1, 3]
    assert routing.route(3, 0)[-1].dst == 0
    assert routing.lookups_per_pair == 4


def test_precomputed_unknown_source_raises():
    topology = build_square()
    routing = PrecomputedRouting(topology)
    with pytest.raises(RouteError):
        routing.route(1, 3)  # node 1 is a router, not a client source


def test_precomputed_custom_sources():
    topology = build_square()
    routing = PrecomputedRouting(topology, sources=[1, 2])
    assert routing.route(1, 2) is not None


def test_precomputed_invalidate_recomputes():
    topology = build_square()
    routing = PrecomputedRouting(topology)
    assert [hop.dst for hop in routing.route(0, 3)] == [1, 3]
    topology.link_between(0, 1).up = False
    routing.invalidate()
    assert [hop.dst for hop in routing.route(0, 3)] == [2, 3]


def test_cached_routing_counts_hits_and_misses():
    topology = build_square()
    routing = CachedRouting(topology)
    routing.route(0, 3)
    assert routing.misses == 1
    routing.route(0, 3)
    assert routing.hits == 1
    routing.route(0, 1)  # same source tree, new destination, no new miss
    assert routing.misses == 1


def test_cached_and_precomputed_agree():
    topology = ring_topology(num_routers=6, vns_per_router=2)
    clients = [n.id for n in topology.clients()]
    precomputed = PrecomputedRouting(topology)
    cached = CachedRouting(topology)
    for src in clients[:4]:
        for dst in clients[:4]:
            a = precomputed.route(src, dst)
            b = cached.route(src, dst)
            assert a == b


def test_cached_invalidate_reroutes():
    topology = build_square()
    routing = CachedRouting(topology)
    assert [hop.dst for hop in routing.route(0, 3)] == [1, 3]
    topology.link_between(0, 1).up = False
    routing.invalidate()
    assert [hop.dst for hop in routing.route(0, 3)] == [2, 3]


def test_dynamic_link_failure_and_recovery():
    topology = build_square()
    routing = DynamicRouting(CachedRouting(topology))
    fast_link = topology.link_between(0, 1)
    assert [hop.dst for hop in routing.route(0, 3)] == [1, 3]

    routing.link_failed(fast_link)
    assert not fast_link.up
    assert [hop.dst for hop in routing.route(0, 3)] == [2, 3]

    routing.link_recovered(fast_link)
    assert [hop.dst for hop in routing.route(0, 3)] == [1, 3]
    assert routing.recomputations == 2


def test_dynamic_node_failure():
    topology = build_square()
    routing = DynamicRouting(CachedRouting(topology))
    routing.node_failed(topology, 1)
    assert [hop.dst for hop in routing.route(0, 3)] == [2, 3]
    routing.node_recovered(topology, 1)
    assert [hop.dst for hop in routing.route(0, 3)] == [1, 3]


def test_dynamic_change_listeners_fire():
    topology = build_square()
    routing = DynamicRouting(CachedRouting(topology))
    calls = []
    routing.on_change(lambda: calls.append(1))
    routing.link_failed(topology.link_between(0, 1))
    assert calls == [1]


def test_partition_returns_none():
    topology = build_square()
    routing = DynamicRouting(CachedRouting(topology))
    routing.node_failed(topology, 1)
    routing.node_failed(topology, 2)
    assert routing.route(0, 3) is None
