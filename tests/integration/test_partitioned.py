"""End-to-end tests for the partitioned engine: serial-partitioned
determinism, multiprocess digest invariance, spec round-trips, and the
report fields that attribute per-domain load."""

import pytest

from repro.api import Scenario
from repro.check.sanitize import SimSanitizer, compose_domain_digests
from repro.engine import PartitionedSimulator
from repro.topology import ring_topology

UNTIL = 0.05


def _ring_scenario(backend="serial", domains=4, workers=None, seed=7):
    return (
        Scenario(
            ring_topology(num_routers=8, vns_per_router=2), name="ring8"
        )
        .distill("hop-by-hop")
        .assign(4)
        .seed(seed)
        .netperf(flows=8)
        .observe(False)
        .backend(backend, domains=domains, workers=workers)
    )


def _digest(scenario, until=UNTIL):
    scenario.build()
    sanitizer = SimSanitizer().attach(scenario.sim)
    try:
        scenario.run(until=until)
    finally:
        sanitizer.detach()
    return sanitizer.digest, sanitizer.dispatched


def test_serial_partitioned_builds_partitioned_simulator():
    scenario = _ring_scenario()
    emulation = scenario.build()
    assert isinstance(scenario.sim, PartitionedSimulator)
    assert emulation.num_domains == 4
    # Bind-time derivation replaces the uniform calibration floor with
    # per-pair bounds from the actual cross-domain pipe latencies, so
    # the effective lookahead is at least pipe latency + floor.
    floor = emulation.config.core_spec.switch_latency_s
    matrix = scenario.sim.matrix
    assert scenario.sim.lookahead == matrix.effective > floor
    assert matrix.widest >= matrix.effective
    for src, dst, bound in matrix.items():
        assert bound >= floor
    # Every core is bound to the domain the assignment dictates.
    for core in emulation.cores:
        assert core.sim is emulation.domains[core.domain_id]


def test_serial_partitioned_is_deterministic():
    first, events_1 = _digest(_ring_scenario())
    second, events_2 = _digest(_ring_scenario())
    assert first == second
    assert events_1 == events_2 > 0


def test_partitioned_sanitizer_composes_domain_digests():
    scenario = _ring_scenario()
    scenario.build()
    sanitizer = SimSanitizer().attach(scenario.sim)
    try:
        scenario.run(until=UNTIL)
    finally:
        sanitizer.detach()
    per_domain = sanitizer.domain_digests()
    assert sorted(per_domain) == [0, 1, 2, 3]
    assert sanitizer.digest == compose_domain_digests(per_domain)
    # The merged record stream covers every domain's events.
    assert len(sanitizer.records) == sanitizer.dispatched


def test_domain_count_changes_schedule_but_not_tcp_outcome():
    """Partitioning changes event interleaving (each domain has its
    own seq counter) but must not change what the network *does*: the
    cross-domain wire and the single-domain egress link model the same
    switch hop, so TCP sees the same path."""
    single = _ring_scenario(domains=1)
    single_report = single.run(until=0.2)
    multi = _ring_scenario(domains=4)
    multi_report = multi.run(until=0.2)
    assert multi_report.metrics["tcp.bytes_received"] == pytest.approx(
        single_report.metrics["tcp.bytes_received"], rel=0.15
    )
    assert (
        multi_report.metrics["accuracy.packets_delivered"]
        == pytest.approx(
            single_report.metrics["accuracy.packets_delivered"], rel=0.15
        )
    )


def test_report_attributes_domains():
    report = _ring_scenario().observe(True).run(until=UNTIL)
    metrics = report.metrics
    assert report.config["backend"] == "serial"
    assert report.config["num_domains"] == 4
    assert metrics["engine.num_domains"] == 4
    assert metrics["engine.epochs"] > 0
    # Effective (tightest) pairwise bound, plus the per-pair
    # breakdown the scalar used to hide (satellite: lookahead
    # under-reporting fix).
    assert metrics["engine.lookahead_s"] > 20e-6
    assert metrics["engine.lookahead_widest_s"] >= metrics["engine.lookahead_s"]
    pair_gauges = [k for k in metrics if k.startswith("engine.lookahead_pair_s")]
    assert pair_gauges, "per-pair lookahead gauges missing"
    assert all(metrics[k] >= 20e-6 for k in pair_gauges)
    per_domain = [
        metrics[f"sim.events_dispatched{{domain={d}}}"] for d in range(4)
    ]
    assert sum(per_domain) == metrics["sim.events_dispatched"]
    # Core gauges carry their domain label for imbalance attribution.
    assert "sched.wakeups{core=0,domain=0}" in metrics
    assert "core.packets_processed{core=0,domain=0}" in metrics


def test_partitioned_requires_physical_model():
    scenario = _ring_scenario().config(model_physical=False)
    with pytest.raises(ValueError, match="model_physical"):
        scenario.build()


class TestMultiprocess:
    def test_digests_invariant_across_worker_counts_and_runs(self):
        from repro.engine.parallel import run_multiprocess

        digests = []
        events = []
        for workers in (1, 2, 4, 2):  # repeat w=2: run-to-run check
            scenario = _ring_scenario("multiprocess")
            scenario.build()
            result = run_multiprocess(
                scenario, until=UNTIL, workers=workers, sanitize=True
            )
            digests.append(result.composed_digest)
            events.append(result.events_dispatched)
        assert len(set(digests)) == 1
        assert len(set(events)) == 1

    def test_multiprocess_matches_serial_partitioned_digest(self):
        from repro.engine.parallel import run_multiprocess

        serial_digest, serial_events = _digest(_ring_scenario())
        scenario = _ring_scenario("multiprocess")
        scenario.build()
        result = run_multiprocess(
            scenario, until=UNTIL, workers=2, sanitize=True
        )
        assert result.composed_digest == serial_digest
        assert result.events_dispatched == serial_events

    def test_scenario_run_merges_worker_stats(self):
        report = (
            _ring_scenario("multiprocess", workers=2)
            .observe(True)
            .run(until=UNTIL)
        )
        metrics = report.metrics
        assert report.config["backend"] == "multiprocess"
        assert metrics["engine.num_domains"] == 4
        assert metrics["engine.epochs"] > 0
        assert metrics["sim.events_dispatched"] > 0
        assert metrics["tcp.connections"] > 0

    def test_default_worker_count_is_capped_by_cpu_count(self):
        """workers=0 must not oversubscribe the machine: more workers
        than CPUs just adds context-switch chains at every barrier."""
        import os

        from repro.engine.parallel import run_multiprocess

        scenario = _ring_scenario("multiprocess")
        scenario.build()
        result = run_multiprocess(
            scenario, until=UNTIL, workers=0, sanitize=True
        )
        assert result.workers == max(1, min(4, os.cpu_count() or 1))
        # The capped run keeps the digest contract with the serial
        # executor regardless of which path (fast or epoch) it took.
        serial_digest, serial_events = _digest(_ring_scenario())
        assert result.composed_digest == serial_digest
        assert result.events_dispatched == serial_events

    def test_custom_traffic_rejected(self):
        scenario = _ring_scenario("multiprocess")
        scenario.traffic(lambda emulation: None)
        with pytest.raises(ValueError, match="declarative traffic"):
            scenario.to_spec()


def test_spec_round_trip_reproduces_digest():
    scenario = _ring_scenario()
    spec = scenario.to_spec()
    clone = Scenario.from_spec(spec)
    original, events_orig = _digest(scenario)
    cloned, events_clone = _digest(clone)
    assert cloned == original
    assert events_clone == events_orig
