"""Property-based invariants on the core data path."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.packet import PacketDescriptor
from repro.core.pipe import INFINITY, Pipe
from repro.core.scheduler import PipeScheduler
from repro.net.packet import Packet


def descriptor(size):
    return PacketDescriptor(Packet(0, 1, size, "udp"), (), 0, 0.0)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_packets=st.integers(1, 80),
    queue_limit=st.integers(1, 30),
    loss=st.floats(0.0, 0.5),
)
def test_pipe_conservation(seed, num_packets, queue_limit, loss):
    """arrivals == departures + drops once the pipe fully drains."""
    rng = random.Random(seed)
    pipe = Pipe(0, 1e6, 0.005, loss_rate=loss, queue_limit=queue_limit)
    now = 0.0
    exits = []
    for _ in range(num_packets):
        now += rng.uniform(0.0, 0.02)
        pipe.arrival(descriptor(rng.randrange(40, 1500)), now, now, rng)
        exits.extend(pipe.service(now))
    exits.extend(pipe.service(now + 1e9))
    drops = pipe.drops_overflow + pipe.drops_random + pipe.drops_down
    assert pipe.arrivals == num_packets
    assert len(exits) + drops == num_packets
    assert pipe.in_flight == 0
    assert pipe.departures == len(exits)


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(0, 10_000), num_packets=st.integers(2, 60))
def test_pipe_fifo_ordering(seed, num_packets):
    """Packets exit a pipe in arrival order (FIFO discipline)."""
    rng = random.Random(seed)
    pipe = Pipe(0, 5e5, 0.003, queue_limit=1000)
    sent = []
    now = 0.0
    for index in range(num_packets):
        now += rng.uniform(0.0, 0.01)
        d = descriptor(rng.randrange(40, 1500))
        d.packet.segment = index
        if pipe.arrival(d, now, now, rng):
            sent.append(index)
    exited = [d.packet.segment for d in pipe.service(now + 1e9)]
    assert exited == sent


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_pipe_exits_never_before_ideal_time(seed):
    """No packet exits before its exact (unquantized) exit time, and
    ideal times are consistent with bandwidth + latency."""
    rng = random.Random(seed)
    pipe = Pipe(0, 1e6, 0.01, queue_limit=1000)
    now = 0.0
    pending = []
    for _ in range(30):
        now += rng.uniform(0.0, 0.02)
        d = descriptor(1000)
        if pipe.arrival(d, now, now, rng):
            pending.append((d, now))
    for d, arrived in pending:
        # Lower bound: own transmission + latency from arrival.
        assert d.ideal_time >= arrived + 1000 * 8 / 1e6 + 0.01 - 1e-12
    exits = pipe.service(now + 1e9)
    assert len(exits) == len(pending)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    tick=st.sampled_from([0.0, 1e-4, 1e-3]),
)
def test_scheduler_services_everything_eventually(seed, tick):
    """Whatever the arrival pattern and tick, all accepted packets are
    eventually serviced, each at or after its deadline (within the
    float-noise tolerance)."""
    rng = random.Random(seed)
    scheduler = PipeScheduler(tick_s=tick)
    pipes = [Pipe(i, rng.uniform(1e5, 1e7), rng.uniform(0, 0.02), queue_limit=500)
             for i in range(4)]
    accepted = 0
    now = 0.0
    for _ in range(60):
        now += rng.uniform(0.0, 0.005)
        pipe = rng.choice(pipes)
        if pipe.arrival(descriptor(rng.randrange(40, 1500)), now, now, rng):
            accepted += 1
            scheduler.notify(pipe)
    serviced = 0
    guard = 0
    while True:
        wake = scheduler.next_wake()
        if wake == INFINITY:
            break
        now = max(now, wake)
        for _pipe, exits in scheduler.collect(now):
            serviced += len(exits)
        guard += 1
        assert guard < 10_000, "scheduler failed to drain"
    assert serviced == accepted


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 5000), cores=st.integers(1, 3))
def test_emulation_packet_conservation(seed, cores):
    """At the whole-emulator level: every packet that entered either
    exited, was dropped somewhere accountable, or is still inside."""
    from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline
    from repro.engine import Simulator
    from repro.topology import ring_topology

    rng = random.Random(seed)
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim, seed=seed)
        .create(ring_topology(num_routers=4, vns_per_router=2))
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(cores)
        .bind(2)
        .run(EmulationConfig(num_cores=cores))
    )
    sinks = [
        emulation.vn(vn).udp_socket(port=9) for vn in range(emulation.num_vns)
    ]
    sender_sockets = [emulation.vn(vn).udp_socket() for vn in range(emulation.num_vns)]
    for _ in range(100):
        src, dst = rng.sample(range(emulation.num_vns), 2)
        sim.at(
            rng.uniform(0, 0.5), sender_sockets[src].send_to, dst, 9, rng.randrange(40, 1460)
        )
    sim.run(until=5.0)
    monitor = emulation.monitor
    in_pipes = sum(pipe.in_flight for pipe in emulation.pipes.values())
    assert in_pipes == 0  # long drained
    accounted = (
        monitor.packets_delivered
        + emulation.virtual_drops()
        + monitor.physical_drops_ring
        + monitor.physical_drops_egress
    )
    assert accounted == monitor.packets_entered
    assert monitor.packets_delivered + monitor.packets_unroutable > 0
