"""Spec-portable fault timelines (DESIGN.md §12): one declarative
FaultPlan must produce digest-identical event streams on the serial
and multiprocess backends, at every worker count, on every pipe
kernel, and through a checkpoint/resume — while surfacing churn as
typed drops and metrics, never an unhandled error."""

import pytest

from repro.api import Scenario
from repro.check.sanitize import SimSanitizer
from repro.core.kernel import KERNELS, numpy_available
from repro.engine.parallel import run_multiprocess
from repro.faults import (
    FaultPlan,
    FaultPlanError,
    LinkDown,
    LinkUp,
    NodeChurn,
    Partition,
    Perturbation,
    SetLinkParams,
)
from repro.resilience import RunAborted, load_checkpoint
from repro.topology import dumbbell_topology, ring_topology

UNTIL = 0.02


def _kernels():
    return [k for k in KERNELS if k != "numpy" or numpy_available()]


def _mixed_plan():
    """Down/up + param timeline + partition + recurring perturbation —
    every event type the acceptance criteria name."""
    return FaultPlan.of(
        LinkDown(0.004, 0),
        LinkUp(0.009, 0),
        SetLinkParams(0.006, 1, latency_s=0.003),
        Partition(0.010, (2,), heal_s=0.014),
        Perturbation(0.002, 0.016, 0.005, link_fraction=0.25),
    )


def _ring_scenario(backend="serial", workers=None, seed=7, kernel=None,
                   plan=None):
    return (
        Scenario(
            ring_topology(num_routers=8, vns_per_router=2), name="flt-ring"
        )
        .distill("hop-by-hop")
        .assign(4)
        .seed(seed)
        .netperf(flows=8)
        .observe(False)
        .backend(backend, domains=4, workers=workers, kernel=kernel)
        .faults(plan if plan is not None else _mixed_plan())
    )


def _digest(scenario, until=UNTIL):
    scenario.build()
    sanitizer = SimSanitizer().attach(scenario.sim)
    try:
        scenario.run(until=until)
    finally:
        sanitizer.detach()
    return sanitizer.digest, sanitizer.dispatched


# ----------------------------------------------------------------------
# Round trips: JSON, spec, overrides
# ----------------------------------------------------------------------

def test_plan_round_trips_through_json():
    plan = _mixed_plan()
    assert FaultPlan.from_json(plan.to_json()) == plan


def test_plan_rides_the_spec_and_reproduces_the_digest():
    baseline, events = _digest(_ring_scenario())
    spec = _ring_scenario().to_spec()
    assert spec.faults == _mixed_plan()
    replayed, replayed_events = _digest(Scenario.from_spec(spec))
    assert replayed == baseline
    assert replayed_events == events


def test_with_overrides_moves_plan_and_traffic_axes_together():
    plan = FaultPlan.of(Perturbation(60.0, 180.0, 25.0))
    spec = _ring_scenario(plan=plan).to_spec()
    moved = spec.with_overrides(perturb_start=30.0, latency_scale_max=1.5)
    [event] = moved.faults.events
    assert event.start_s == 30.0
    assert event.latency_scale == (1.0, 1.5)
    # The original spec is untouched (plans are frozen values).
    assert spec.faults == plan


def test_validate_refuses_unknown_links_upfront():
    plan = FaultPlan.of(LinkDown(0.001, 9999))
    with pytest.raises(FaultPlanError, match="9999"):
        _ring_scenario(plan=plan).build()


# ----------------------------------------------------------------------
# Digest invariance: backends, worker counts, kernels
# ----------------------------------------------------------------------

def test_serial_and_multiprocess_agree_at_every_worker_count():
    serial_digest, serial_events = _digest(_ring_scenario())
    serial_counters = None
    for workers in (1, 2, 4):
        scenario = _ring_scenario("multiprocess", workers=workers)
        scenario.build()
        result = run_multiprocess(
            scenario, until=UNTIL, workers=workers, sanitize=True
        )
        assert result.composed_digest == serial_digest
        assert result.events_dispatched == serial_events
        counters = scenario.emulation.fault_applier.counters()
        assert counters["applied"] > 0
        if serial_counters is None:
            serial_counters = counters
        assert counters == serial_counters


def test_flapping_storm_is_digest_invariant_across_kernels():
    """Rapid down/up flaps spaced well below the ~2 ms cross-domain
    lookahead: occurrences land mid-epoch and must still apply at the
    same barriers on every kernel."""
    flaps = []
    when = 0.0050
    for _ in range(10):
        flaps.append(LinkDown(when, 0))
        flaps.append(LinkUp(when + 0.0001, 0))
        when += 0.0002
    storm = FaultPlan.of(*flaps)
    digests = {}
    for kernel in _kernels():
        digests[kernel], _ = _digest(_ring_scenario(kernel=kernel, plan=storm))
    assert len(set(digests.values())) == 1, digests
    scenario = _ring_scenario("multiprocess", workers=2, plan=storm)
    scenario.build()
    result = run_multiprocess(scenario, until=UNTIL, workers=2, sanitize=True)
    assert result.composed_digest == digests[_kernels()[0]]
    assert scenario.emulation.fault_applier.injected == 10
    assert scenario.emulation.fault_applier.recovered == 10


def test_in_flight_packets_on_failed_pipe_drop_deterministically():
    """Killing a loaded link mid-run flushes its pipes: the in-flight
    packets become typed ``drops_down``, identically on serial and
    multiprocess (the epoch barrier aligns the flush point)."""
    plan = FaultPlan.of(LinkDown(0.010, 0))
    serial = _ring_scenario(plan=plan).observe(True)
    report = serial.run(until=UNTIL)
    assert report.metrics["pipe.drops_down"] > 0
    assert report.metrics["faults.injected"] == 1

    serial_digest, serial_events = _digest(_ring_scenario(plan=plan))
    mp = _ring_scenario("multiprocess", workers=2, plan=plan)
    mp.build()
    result = run_multiprocess(mp, until=UNTIL, workers=2, sanitize=True)
    assert result.composed_digest == serial_digest
    assert result.events_dispatched == serial_events


def test_partitioned_destination_surfaces_as_drops_not_keyerror():
    """A partition that never heals: flows into the cut must degrade
    to typed drops/unroutable counts, not an unhandled KeyError."""
    topology = ring_topology(num_routers=8, vns_per_router=2)
    cut = tuple(sorted(topology.links))[:4]
    plan = FaultPlan.of(Partition(0.002, cut))
    scenario = _ring_scenario(plan=plan).observe(True)
    report = scenario.run(until=UNTIL)  # must not raise
    dropped = (
        report.metrics.get("pipe.drops_down", 0)
        + report.metrics.get("accuracy.packets_unroutable", 0)
    )
    assert dropped > 0
    assert report.metrics["faults.injected"] == len(cut)


def test_node_churn_fails_all_incident_links():
    topology = ring_topology(num_routers=8, vns_per_router=2)
    node = sorted(topology.nodes)[0]
    incident = [link.id for link in topology.links_of(node)]
    plan = FaultPlan.of(
        NodeChurn(0.004, node, up=False), NodeChurn(0.012, node, up=True)
    )
    scenario = _ring_scenario(plan=plan)
    scenario.run(until=UNTIL)
    applier = scenario.emulation.fault_applier
    assert applier.injected == len(incident)
    assert applier.recovered == len(incident)
    for link_id in incident:
        assert scenario.emulation.topology.links[link_id].up


# ----------------------------------------------------------------------
# Lookahead floor guard
# ----------------------------------------------------------------------

def test_plan_below_lookahead_floor_is_refused_with_typed_error():
    topology = ring_topology(num_routers=8, vns_per_router=2)
    lowering = FaultPlan.of(
        *[
            SetLinkParams(0.005, link_id, latency_s=1e-6)
            for link_id in sorted(topology.links)
        ]
    )
    with pytest.raises(FaultPlanError, match="lookahead floor"):
        _ring_scenario(plan=lowering).build()


def test_lowering_latency_above_floor_is_allowed():
    plan = FaultPlan.of(SetLinkParams(0.005, 0, latency_s=0.001))
    digest, events = _digest(_ring_scenario(plan=plan))
    assert events > 0
    repeat, _ = _digest(_ring_scenario(plan=plan))
    assert repeat == digest


# ----------------------------------------------------------------------
# Checkpoint / resume mid-timeline
# ----------------------------------------------------------------------

def test_resume_mid_timeline_equals_uninterrupted(tmp_path):
    until = 0.02
    path = str(tmp_path / "faults.ckpt")

    full = _ring_scenario().resilience().run(until=until)
    full_digest = full.metrics["run.digest"]
    full_events = full.metrics["run.events"]
    assert full.metrics["faults.applied"] > 0

    interrupted = _ring_scenario().resilience(
        checkpoint_every=0.004, checkpoint=path,
        max_events=int(full_events * 0.6),
    )
    with pytest.raises(RunAborted):
        interrupted.run(until=until)

    checkpoint = load_checkpoint(path)
    assert 0 < checkpoint.barrier_time < until
    # The checkpoint pins the timeline position and the perturbed
    # per-link state at the barrier, not just the event digests.
    assert checkpoint.fault_cursor is not None
    assert checkpoint.link_state
    resumed = Scenario.from_checkpoint(path).run(until=until)
    assert resumed.metrics["run.digest"] == full_digest
    assert resumed.metrics["run.events"] == full_events
    assert resumed.metrics["faults.applied"] == full.metrics["faults.applied"]


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------

def test_fault_counters_gauges_and_events_in_report():
    report = _ring_scenario().observe(True).run(until=UNTIL)
    assert report.metrics["faults.injected"] >= 2
    assert report.metrics["faults.recovered"] >= 2
    assert report.metrics["faults.perturbations"] >= 1
    assert report.metrics["faults.planned"] == len(_mixed_plan().events)
    # Both churned links healed by the end of the run.
    assert report.metrics["topology.link_up{link=0}"] == 1
    assert report.metrics["topology.link_up{link=2}"] == 1
    kinds = {event["kind"] for event in report.fault_events}
    assert {"link_down", "link_up", "set_link_params", "perturbation"} <= kinds
    round_tripped = type(report).from_json(report.to_json())
    assert round_tripped.fault_events == report.fault_events


def test_multiprocess_report_carries_worker_fault_counters():
    report = (
        _ring_scenario("multiprocess", workers=2)
        .observe(True)
        .run(until=UNTIL)
    )
    assert report.metrics["faults.injected"] >= 2
    assert report.metrics["faults.recovered"] >= 2


# ----------------------------------------------------------------------
# Imperative injector regression (lazy snapshots)
# ----------------------------------------------------------------------

def test_deliberate_param_change_after_injector_construction_survives():
    """Regression: FaultInjector snapshotted every link eagerly at
    construction, so a deliberate post-construction set_link_params
    was clobbered by the perturbation window's restore. Snapshots are
    now taken lazily at first perturbation."""
    from repro.core.faults import FaultInjector, LinkPerturbation

    scenario = (
        Scenario.from_topology(dumbbell_topology(2), name="flt-dumbbell")
        .distill("hop-by-hop")
        .seed(1)
        .netperf(flows=2)
        .observe(False)
    )
    emulation = scenario.build()
    injector = FaultInjector(emulation)
    link_id = sorted(emulation.topology.links)[0]
    emulation.set_link_params(link_id, latency_s=0.005)  # deliberate
    injector.start_perturbation(
        LinkPerturbation(
            period_s=0.002, link_fraction=1.0, latency_scale=(2.0, 2.0)
        ),
        start_s=0.004,
        stop_s=0.008,
        link_ids=[link_id],
    )
    scenario.run(until=0.012)
    pipe, _ = emulation.pipes_of_link(link_id)
    assert pipe.latency_s == pytest.approx(0.005)
