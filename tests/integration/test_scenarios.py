"""Cross-module scenario tests: the pieces working together."""

import random

import pytest

from repro.apps.netperf import TcpStream
from repro.core import (
    CrossTrafficMatrix,
    CrossTrafficModel,
    DistillationMode,
    EmulationConfig,
    ExperimentPipeline,
    FaultInjector,
)
from repro.core.emulator import Emulation
from repro.core.routing_emulation import DistanceVectorRouting
from repro.engine import Simulator
from repro.net.interpose import interpose
from repro.topology import NodeKind, Topology, ring_topology


def redundant_topology():
    """Two disjoint router paths between a pair of clients."""
    topology = Topology()
    c0 = topology.add_node(NodeKind.CLIENT)
    r1 = topology.add_node(NodeKind.STUB)
    r2 = topology.add_node(NodeKind.STUB)
    c3 = topology.add_node(NodeKind.CLIENT)
    topology.add_link(c0.id, r1.id, 10e6, 0.002)
    topology.add_link(r1.id, c3.id, 10e6, 0.002)
    topology.add_link(c0.id, r2.id, 5e6, 0.010)
    topology.add_link(r2.id, c3.id, 5e6, 0.010)
    return topology


def test_tcp_survives_link_failover():
    """A bulk transfer keeps its connection across a path failure and
    completes over the backup path."""
    topology = redundant_topology()
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    injector = FaultInjector(emulation)
    done = []
    emulation.vn(1).tcp_listen(80, lambda c: None)
    conn = emulation.vn(0).tcp_connect(
        1, 80, on_established=lambda c: c.send(8_000_000, message="eof")
    )
    injector.fail_link_at(1.0, 0)  # fast path down mid-transfer
    injector.recover_link_at(4.0, 0)
    sim.run(until=30.0)
    assert conn.bytes_acked == 8_000_000
    # The dying link dropped its queue: TCP saw real loss (recovered
    # by fast retransmit and/or RTO depending on what was in flight).
    assert conn.timeouts + conn.fast_retransmits >= 1
    assert conn.segments_retransmitted >= 1


def test_tcp_through_dv_routing_convergence():
    """Same failover, but with the emulated routing protocol: the
    transfer stalls during convergence yet still completes."""
    topology = redundant_topology()
    sim = Simulator()
    protocol = DistanceVectorRouting(sim, topology, processing_delay_s=0.05)
    emulation = Emulation(
        sim, topology, EmulationConfig.reference(), routing=protocol
    )
    emulation.vn(1).tcp_listen(80, lambda c: None)
    conn = emulation.vn(0).tcp_connect(
        1, 80, on_established=lambda c: c.send(4_000_000)
    )
    sim.at(1.0, protocol.link_failed, topology.link_between(0, 1))
    sim.run(until=60.0)
    assert conn.bytes_acked == 4_000_000


def test_cross_traffic_and_faults_compose():
    """Synthetic cross traffic and a fault schedule drive the same
    pipes without stepping on each other's bookkeeping."""
    topology = ring_topology(num_routers=5, vns_per_router=2)
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    model = CrossTrafficModel(emulation)
    matrix = CrossTrafficMatrix()
    matrix.set_demand(0, 9, 1e6)
    model.schedule_profile([(1.0, matrix), (3.0, None)])
    injector = FaultInjector(emulation)
    ring_link = next(
        l.id
        for l in topology.links.values()
        if topology.node(l.a).kind is NodeKind.STUB
        and topology.node(l.b).kind is NodeKind.STUB
    )
    injector.fail_link_at(2.0, ring_link)
    injector.recover_link_at(4.0, ring_link)

    stream = TcpStream(emulation, 0, 9)
    sim.run(until=8.0)
    assert stream.bytes_received > 0
    # After both perturbations clear, foreground pipes are restored.
    for src, dst, _bps in matrix.pairs():
        for pipe in emulation.lookup_pipes(src, dst):
            baseline = model._baseline[pipe.id]
            assert pipe.bandwidth_bps == pytest.approx(baseline[0])


def test_red_links_trim_queues_vs_droptail():
    """A RED-annotated bottleneck keeps standing queues shorter than
    drop-tail under the same offered load."""
    results = {}
    for qdisc in ("droptail", "red"):
        topology = Topology()
        a = topology.add_node(NodeKind.CLIENT)
        r1 = topology.add_node(NodeKind.STUB)
        r2 = topology.add_node(NodeKind.STUB)
        b = topology.add_node(NodeKind.CLIENT)
        topology.add_link(a.id, r1.id, 50e6, 0.001)
        kwargs = {"qdisc": "red"} if qdisc == "red" else {}
        bottleneck = topology.add_link(
            r1.id, r2.id, 2e6, 0.020, queue_limit=100, **kwargs
        )
        topology.add_link(r2.id, b.id, 50e6, 0.001)
        sim = Simulator()
        emulation = (
            ExperimentPipeline(sim)
            .create(topology)
            .run(EmulationConfig.reference())
        )
        stream = TcpStream(emulation, 0, 1)
        pipe = emulation.pipes_of_link(bottleneck.id)[0]
        samples = []
        def sample():
            samples.append(pipe.backlog_pkts)
            if sim.now < 10.0:
                sim.schedule(0.05, sample)
        sim.schedule(2.0, sample)
        sim.run(until=10.0)
        stream.stop()
        results[qdisc] = (
            sum(samples) / len(samples),
            stream.bytes_received,
        )
    red_queue, red_bytes = results["red"]
    dt_queue, dt_bytes = results["droptail"]
    assert red_queue < dt_queue * 0.8
    # Throughput stays in the same ballpark (RED trades tiny goodput
    # for much lower queueing delay).
    assert red_bytes > 0.7 * dt_bytes


def test_interposed_apps_over_full_emulation():
    """Hostname-level applications run over the full-fidelity core."""
    topology = ring_topology(num_routers=4, vns_per_router=2)
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .distill(DistillationMode.WALK_IN, walk_in=1)
        .assign(2)
        .bind(2)
        .run(EmulationConfig(num_cores=2))
    )
    names, envs = interpose(
        emulation, hostnames={0: "client.example", 7: "server.example"}
    )
    received = []
    envs[7].tcp_listen(
        80,
        lambda conn: setattr(
            conn, "on_message", lambda c, m: received.append(m)
        ),
    )
    envs[0].tcp_connect(
        "server.example",
        80,
        on_established=lambda c: c.send(10_000, message="payload"),
    )
    sim.run(until=5.0)
    assert received == ["payload"]
    assert emulation.accuracy_report().packets_delivered > 10
