"""Tests for the batch-kernel discipline rules (repro.check.kernel)."""

import os

from repro.check import kernel
from repro.check.kernel import in_scope
from repro.check.model import ModuleModel, check_paths

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


def collect(source: str, path: str = "src/repro/core/x.py"):
    return kernel.collect(ModuleModel(source, path=path))


# ----------------------------------------------------------------------
# Seeded fixture trips exactly its rule
# ----------------------------------------------------------------------

def test_fixture_trips_kern001_twice():
    report = check_paths([fixture("core", "kern001_per_packet_event.py")])
    assert {v.rule for v in report.violations} == {"KERN001"}
    assert len(report.violations) == 2


# ----------------------------------------------------------------------
# Scope: engine/ and core/, minus the sanctioned homes
# ----------------------------------------------------------------------

def test_scope():
    assert in_scope("src/repro/core/node.py")
    assert in_scope("src/repro/engine/parallel.py")
    assert not in_scope("src/repro/core/kernel.py")
    assert not in_scope("src/repro/engine/sync.py")
    assert not in_scope("src/repro/apps/netperf.py")


def test_out_of_scope_source_is_ignored():
    source = "def f(sim, descriptor):\n    sim.post(0.1, f, descriptor)\n"
    assert collect(source, path="src/repro/apps/x.py") == []
    assert collect(source, path="src/repro/core/kernel.py") == []
    assert collect(source, path="src/repro/core/x.py")


# ----------------------------------------------------------------------
# KERN001 shapes
# ----------------------------------------------------------------------

def test_every_scheduling_entry_point_with_descriptor_payload():
    source = (
        "def f(sim, descriptor):\n"
        "    sim.schedule(0.1, fire, descriptor)\n"
        "    sim.at(0.1, fire, descriptor)\n"
        "    sim.post(0.1, fire, descriptor)\n"
        "    sim.call_soon(fire, descriptor)\n"
    )
    assert [v.rule for v in collect(source)] == ["KERN001"] * 4


def test_heappush_of_descriptor_tuple():
    source = (
        "from heapq import heappush\n"
        "def f(heap, t, descriptor):\n"
        "    heappush(heap, (t, descriptor))\n"
    )
    [violation] = collect(source)
    assert violation.rule == "KERN001"
    assert "heappush" in violation.message


def test_qualified_heappush_and_packet_attribute():
    source = (
        "import heapq\n"
        "def f(heap, t, entry):\n"
        "    heapq.heappush(heap, (t, entry.packet))\n"
    )
    assert [v.rule for v in collect(source)] == ["KERN001"]


def test_lambda_payload_capturing_descriptor_is_flagged():
    source = (
        "def f(sim, descriptor, now):\n"
        "    sim.at(now, lambda: deliver(descriptor))\n"
    )
    assert [v.rule for v in collect(source)] == ["KERN001"]


def test_descriptorish_keyword_argument_is_flagged():
    source = (
        "def f(sim, pkt, now):\n"
        "    sim.post(now, fire, payload=pkt)\n"
    )
    assert [v.rule for v in collect(source)] == ["KERN001"]


# ----------------------------------------------------------------------
# Sanctioned shapes stay clean
# ----------------------------------------------------------------------

def test_pipe_heap_entries_and_admit_are_clean():
    source = (
        "from heapq import heappush\n"
        "def f(heap, deadline, tiebreak, pipe, descriptor, t0, t1):\n"
        "    heappush(heap, (deadline, tiebreak, pipe))\n"
        "    pipe._line.admit(descriptor, t0, t1)\n"
    )
    assert collect(source) == []


def test_descriptorless_scheduling_is_clean():
    source = (
        "def f(sim, now, wake):\n"
        "    sim.at(now + 0.001, wake)\n"
        "    sim.post(now, wake)\n"
    )
    assert collect(source) == []


def test_suppression_comment_silences_the_rule():
    source = (
        "def f(sim, descriptor, now):\n"
        "    sim.at(now, trace, descriptor)"
        "  # repro: allow-per-packet-event\n"
    )
    report = check_paths(
        [_write_tmp(source)], select=["KERN"]
    )
    assert report.violations == []


def _write_tmp(source: str) -> str:
    import tempfile

    directory = tempfile.mkdtemp()
    scoped = os.path.join(directory, "core")
    os.makedirs(scoped, exist_ok=True)
    path = os.path.join(scoped, "snippet.py")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(source)
    return path


# ----------------------------------------------------------------------
# The live tree holds the invariant
# ----------------------------------------------------------------------

def test_live_core_and_engine_are_kern_clean():
    src = os.path.join(
        os.path.dirname(__file__), os.pardir, os.pardir, "src", "repro"
    )
    report = check_paths(
        [os.path.join(src, "core"), os.path.join(src, "engine")],
        select=["KERN"],
    )
    assert report.violations == []
