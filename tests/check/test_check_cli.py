"""CLI contract for `repro-net check`: formats and exit codes.

Exit codes: 0 clean, 1 violations found, 2 usage error. Warnings
(unused suppressions, stale baseline entries) never affect the code.
"""

import json
import os

import pytest

from repro.tools import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


# ----------------------------------------------------------------------
# Exit codes
# ----------------------------------------------------------------------

def test_exit_0_on_clean(capsys):
    assert main(["check", fixture("engine", "clean_partitioned.py")]) == 0
    assert "clean" in capsys.readouterr().out


def test_exit_1_on_violations(capsys):
    assert main(["check", fixture("engine", "dom001_cross_post.py")]) == 1
    assert "DOM001" in capsys.readouterr().out


def test_exit_2_on_no_paths(capsys):
    assert main(["check"]) == 2
    assert "error" in capsys.readouterr().err


def test_exit_2_on_unknown_select(capsys):
    assert main(["check", "--select", "NOPE", FIXTURES]) == 2
    assert "NOPE" in capsys.readouterr().err


def test_exit_2_on_missing_path(capsys):
    assert main(["check", "no/such/dir"]) == 2
    assert "error" in capsys.readouterr().err


# ----------------------------------------------------------------------
# --select
# ----------------------------------------------------------------------

def test_select_restricts_families(capsys):
    path = fixture("engine", "dom001_cross_post.py")
    assert main(["check", "--select", "DET", path]) == 0
    capsys.readouterr()
    assert main(["check", "--select", "DOM,PORT,EPO", path]) == 1
    assert "DOM001" in capsys.readouterr().out


def test_select_repeated_flags_accumulate(capsys):
    path = fixture("engine", "epo002_sublookahead.py")
    assert main(["check", "--select", "DOM", "--select", "EPO", path]) == 1
    assert "EPO002" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Text format
# ----------------------------------------------------------------------

def test_text_format_path_line_col_rule(capsys):
    path = fixture("engine", "epo001_clock_peek.py")
    assert main(["check", path]) == 1
    line = next(
        l for l in capsys.readouterr().out.splitlines() if "EPO001" in l
    )
    location = line.split(" ", 1)[0]
    assert location.startswith(f"{path}:")
    assert location.count(":") >= 3  # path:line:col:


# ----------------------------------------------------------------------
# JSON format
# ----------------------------------------------------------------------

def test_json_clean_report(capsys):
    path = fixture("engine", "clean_partitioned.py")
    assert main(["check", "--format", "json", path]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["format"] == "repro-check/1"
    assert payload["clean"] is True
    assert payload["files"] == 1
    assert payload["violations"] == []


def test_json_violation_report(capsys):
    path = fixture("engine", "dom002_foreign_state.py")
    assert main(["check", "--format", "json", path]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is False
    [violation] = payload["violations"]
    assert violation["rule"] == "DOM002"
    assert violation["path"] == path
    assert violation["line"] > 0
    assert violation["col"] > 0
    assert violation["message"]


def test_json_carries_warnings_without_failing(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("x = 1  # repro: allow-rng\n")
    assert main(["check", "--format", "json", str(target)]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["clean"] is True
    [warning] = payload["warnings"]
    assert warning["rule"] == "SUP001"


def test_every_seeded_fixture_rule_in_one_json_sweep(capsys):
    assert main(["check", "--format", "json", "--no-baseline", FIXTURES]) == 1
    payload = json.loads(capsys.readouterr().out)
    flagged = {v["rule"] for v in payload["violations"]}
    assert flagged == {
        "DET001", "DET002", "DET003", "DET004", "NED001", "ROB001",
        "DOM001", "DOM002", "DOM003", "EPO001", "EPO002",
        "PORT001", "PORT002", "PORT003", "KERN001", "FLT001",
    }


# ----------------------------------------------------------------------
# Warnings in text mode
# ----------------------------------------------------------------------

def test_text_mode_prints_warnings_but_stays_clean(tmp_path, capsys):
    target = tmp_path / "x.py"
    target.write_text("x = 1  # repro: allow-wallclock\n")
    assert main(["check", str(target)]) == 0
    out = capsys.readouterr().out
    assert "warning:" in out
    assert "SUP001" in out
    assert "clean" in out


def test_list_rules_spans_families(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("DET001", "DOM001", "EPO002", "PORT003"):
        assert rule in out
