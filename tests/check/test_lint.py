"""Tests for the determinism linter (repro.check.lint)."""

import os

import pytest

from repro.check.lint import (
    BaselineEntry,
    Violation,
    format_violation,
    iter_python_files,
    lint_paths,
    lint_source,
    load_baseline,
)
from repro.tools import main

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


# ----------------------------------------------------------------------
# Each seeded-bug fixture trips exactly its rule
# ----------------------------------------------------------------------

SEEDED_BUGS = [
    (fixture("det001_bare_rng.py"), "DET001", 3),
    (fixture("core", "det002_wallclock.py"), "DET002", 3),
    (fixture("det003_set_fanout.py"), "DET003", 2),
    (fixture("det004_id_tiebreak.py"), "DET004", 3),
    (fixture("ned001_lambda_capture.py"), "NED001", 1),
    (fixture("core", "rob001_swallow.py"), "ROB001", 3),
]


@pytest.mark.parametrize("path,rule,count", SEEDED_BUGS)
def test_fixture_trips_its_rule(path, rule, count):
    violations = lint_paths([path])
    assert violations, f"{path} produced no violations"
    assert {v.rule for v in violations} == {rule}
    assert len(violations) == count
    for violation in violations:
        assert violation.path == path
        assert violation.line > 0


@pytest.mark.parametrize("path,rule,count", SEEDED_BUGS)
def test_cli_check_exits_nonzero_with_rule_and_location(path, rule, count, capsys):
    assert main(["check", path, "--no-baseline"]) == 1
    out = capsys.readouterr().out
    assert rule in out
    # rule ID + file:line on each finding
    assert f"{path}:" in out
    first = next(l for l in out.splitlines() if rule in l)
    location = first.split(" ", 1)[0]
    assert location.count(":") >= 2  # path:line:col:


def test_clean_fixture_passes(capsys):
    assert lint_paths([fixture("clean.py")]) == []
    assert main(["check", fixture("clean.py")]) == 0
    assert "clean" in capsys.readouterr().out


def test_repo_src_is_clean():
    """The acceptance bar: repro-net check src/ exits 0 post-migration."""
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    assert lint_paths([os.path.normpath(src)]) == []


# ----------------------------------------------------------------------
# Scope + suppression mechanics
# ----------------------------------------------------------------------

def test_det002_only_fires_in_simulation_packages():
    source = "import time\n\ndef f():\n    return time.time()\n"
    assert lint_source(source, path="tools/build.py") == []
    flagged = lint_source(source, path="src/repro/core/thing.py")
    assert [v.rule for v in flagged] == ["DET002"]


def test_det002_scope_override():
    source = "from time import perf_counter\nx = perf_counter()\n"
    assert lint_source(source, path="anywhere.py", sim_scope=True)
    assert lint_source(source, path="anywhere.py", sim_scope=False) == []


def test_rng_home_is_exempt():
    source = "import random\nr = random.Random(1)\n"
    assert lint_source(source, path="src/repro/engine/randomness.py") == []
    assert lint_source(source, path="src/repro/engine/other.py")


def test_inline_suppression_same_line_and_line_above():
    same_line = (
        "import random\n"
        "r = random.Random(1)  # repro: allow-rng\n"
    )
    assert lint_source(same_line, path="x.py") == []
    line_above = (
        "import random\n"
        "# repro: allow-rng\n"
        "r = random.Random(1)\n"
    )
    assert lint_source(line_above, path="x.py") == []
    by_rule_id = (
        "import random\n"
        "r = random.Random(1)  # repro: allow-DET001\n"
    )
    assert lint_source(by_rule_id, path="x.py") == []


def test_suppression_is_rule_specific():
    source = (
        "import random\n"
        "r = random.Random(1)  # repro: allow-wallclock\n"
    )
    assert [v.rule for v in lint_source(source, path="x.py")] == ["DET001"]


def test_import_aliases_are_tracked():
    source = "import random as rnd\nr = rnd.Random(1)\n"
    assert [v.rule for v in lint_source(source, path="x.py")] == ["DET001"]
    source = "from random import Random as R\nr = R(1)\n"
    assert [v.rule for v in lint_source(source, path="x.py")] == ["DET001"]
    source = "from time import perf_counter as pc\nx = pc()\n"
    assert [v.rule for v in lint_source(source, path="x.py", sim_scope=True)]


def test_annotations_are_not_flagged():
    source = (
        "import random\n"
        "from typing import Optional\n"
        "def f(rng: Optional[random.Random] = None):\n"
        "    return rng\n"
    )
    assert lint_source(source, path="x.py") == []


def test_rob001_only_fires_in_engine_and_core():
    source = (
        "def f(work):\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:\n"
        "        pass\n"
    )
    assert lint_source(source, path="src/repro/tools/cli.py") == []
    assert lint_source(source, path="src/repro/resilience/supervisor.py") == []
    for where in ("src/repro/engine/parallel.py", "src/repro/core/faults.py"):
        assert [v.rule for v in lint_source(source, path=where)] == ["ROB001"]


def test_rob001_scope_override():
    source = "try:\n    x = 1\nexcept BaseException:\n    pass\n"
    assert lint_source(source, path="anywhere.py", rob_scope=True)
    assert lint_source(source, path="src/repro/core/x.py", rob_scope=False) == []


def test_rob001_requires_silent_body():
    loud = (
        "def f(work, log):\n"
        "    try:\n"
        "        work()\n"
        "    except Exception as error:\n"
        "        log(error)\n"
    )
    assert lint_source(loud, path="src/repro/engine/x.py") == []
    reraise = (
        "def f(work):\n"
        "    try:\n"
        "        work()\n"
        "    except BaseException:\n"
        "        raise\n"
    )
    assert lint_source(reraise, path="src/repro/engine/x.py") == []


def test_rob001_escape_hatch():
    source = (
        "def f(work):\n"
        "    try:\n"
        "        work()\n"
        "    except Exception:  # repro: allow-broad-except\n"
        "        pass\n"
    )
    assert lint_source(source, path="src/repro/engine/x.py") == []


def test_det003_requires_heap_feeding_body():
    source = "def f(peers):\n    return [p.name for p in peers]\n"
    assert lint_source(source, path="x.py") == []
    harmless = (
        "def f(sim, peers):\n"
        "    for p in set(peers):\n"
        "        print(p)\n"
    )
    assert lint_source(harmless, path="x.py") == []


# ----------------------------------------------------------------------
# Baseline
# ----------------------------------------------------------------------

def test_baseline_suppresses_matching_rule(tmp_path):
    baseline = tmp_path / "check-baseline.toml"
    baseline.write_text(
        "[[suppress]]\n"
        'file = "det001_bare_rng.py"\n'
        'rule = "DET001"\n'
    )
    entries = load_baseline(str(baseline))
    assert lint_paths([fixture("det001_bare_rng.py")], baseline=entries) == []
    # The baseline is rule-specific: DET003 findings survive it.
    assert lint_paths([fixture("det003_set_fanout.py")], baseline=entries)


def test_baseline_line_pinning(tmp_path):
    baseline = tmp_path / "check-baseline.toml"
    baseline.write_text(
        "[[suppress]]\n"
        'file = "det001_bare_rng.py"\n'
        'rule = "DET001"\n'
        "line = 10\n"
    )
    entries = load_baseline(str(baseline))
    assert entries[0].line == 10
    remaining = lint_paths([fixture("det001_bare_rng.py")], baseline=entries)
    assert remaining and all(v.line != 10 for v in remaining)


def test_baseline_entry_matching():
    entry = BaselineEntry(file="src/repro/foo.py", rule="DET001")
    hit = Violation("DET001", "/abs/src/repro/foo.py", 3, 1, "m")
    miss_rule = Violation("DET002", "/abs/src/repro/foo.py", 3, 1, "m")
    miss_file = Violation("DET001", "/abs/src/repro/bar.py", 3, 1, "m")
    assert entry.matches(hit)
    assert not entry.matches(miss_rule)
    assert not entry.matches(miss_file)


def test_baseline_rejects_incomplete_entries(tmp_path):
    bad = tmp_path / "bad.toml"
    bad.write_text('[[suppress]]\nrule = "DET001"\n')
    with pytest.raises(ValueError):
        load_baseline(str(bad))


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------

def test_cli_list_rules(capsys):
    assert main(["check", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("DET001", "DET002", "DET003", "DET004", "NED001", "ROB001"):
        assert rule in out


def test_cli_no_paths_is_usage_error(capsys):
    assert main(["check"]) == 2


def test_iter_python_files_skips_pycache(tmp_path):
    (tmp_path / "__pycache__").mkdir()
    (tmp_path / "__pycache__" / "junk.py").write_text("x = 1\n")
    (tmp_path / "a.py").write_text("x = 1\n")
    found = iter_python_files([str(tmp_path)])
    assert [os.path.basename(f) for f in found] == ["a.py"]


def test_format_violation():
    violation = Violation("DET001", "a/b.py", 12, 5, "no")
    assert format_violation(violation) == "a/b.py:12:5: DET001 no"


def test_baseline_fallback_parser_matches_tomllib(tmp_path):
    """Python 3.10 has no tomllib; the fallback must parse the same
    constrained shape."""
    from repro.check.lint import _parse_baseline_fallback

    text = (
        "# a comment\n"
        "[[suppress]]\n"
        'file = "src/repro/foo.py"\n'
        'rule = "DET001"\n'
        "line = 12  # trailing comment\n"
        "\n"
        "[[suppress]]\n"
        "file = 'src/repro/bar.py'\n"
        'rule = "DET003"\n'
    )
    tables = _parse_baseline_fallback(text)
    assert tables == [
        {"file": "src/repro/foo.py", "rule": "DET001", "line": 12},
        {"file": "src/repro/bar.py", "rule": "DET003"},
    ]


def test_repo_baseline_file_parses():
    import os

    root = os.path.normpath(
        os.path.join(os.path.dirname(__file__), "..", "..")
    )
    path = os.path.join(root, "check-baseline.toml")
    assert load_baseline(path) == []
