"""Tests for the shared analysis infrastructure (repro.check.model)."""

import os
import time

import pytest

from repro.check.model import (
    BaselineEntry,
    ModuleModel,
    Violation,
    check_paths,
    registered_rules,
    resolve_select,
    scan_suppressions,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")
SRC = os.path.normpath(
    os.path.join(os.path.dirname(__file__), "..", "..", "src")
)


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


# ----------------------------------------------------------------------
# Registry + --select resolution
# ----------------------------------------------------------------------

def test_registry_spans_every_family():
    rules = registered_rules()
    for rule in ("DET001", "NED001", "ROB001", "DOM001", "DOM002", "DOM003",
                 "EPO001", "EPO002", "PORT001", "PORT002", "PORT003"):
        assert rule in rules


def test_resolve_select_prefixes_ids_and_all():
    assert resolve_select(["DOM"]) == {"DOM001", "DOM002", "DOM003"}
    assert resolve_select(["EPO001"]) == {"EPO001"}
    assert resolve_select(["DOM", "PORT", "EPO"]) == {
        "DOM001", "DOM002", "DOM003", "EPO001", "EPO002",
        "PORT001", "PORT002", "PORT003",
    }
    assert resolve_select(["all"]) == set(registered_rules())
    assert resolve_select(None) == set(registered_rules())
    with pytest.raises(ValueError):
        resolve_select(["NOPE"])


def test_select_filters_families():
    path = fixture("engine", "dom001_cross_post.py")
    assert check_paths([path], select=["DOM"]).violations
    assert check_paths([path], select=["DET"]).violations == []


# ----------------------------------------------------------------------
# Suppression scanning + usage accounting
# ----------------------------------------------------------------------

def test_scan_suppressions_ignores_strings_and_docstrings(tmp_path):
    source = (
        '"""Docs mention # repro: allow-wallclock but are not comments."""\n'
        "x = '# repro: allow-rng'\n"
        "y = 1  # repro: allow-tiebreak\n"
    )
    markers = scan_suppressions(source)
    assert [(m.line, m.rule) for m in markers] == [(3, "DET004")]


def test_unused_suppression_is_warned(tmp_path):
    target = tmp_path / "engine" / "x.py"
    target.parent.mkdir()
    target.write_text(
        "def f(sim, fn):\n"
        "    sim.domains[0].post(0.1, fn)  # repro: allow-cross-domain-schedule\n"
        "    return None  # repro: allow-cross-domain-clock\n"
    )
    report = check_paths([str(target)])
    assert report.violations == []  # DOM001 suppressed
    assert [w.rule for w in report.warnings] == ["SUP001"]
    assert "cross-domain-clock" in report.warnings[0].message
    assert report.clean  # warnings never fail the run


def test_unknown_suppression_tag_is_warned(tmp_path):
    target = tmp_path / "x.py"
    target.write_text("x = 1  # repro: allow-tpyo\n")
    report = check_paths([str(target)])
    assert [w.rule for w in report.warnings] == ["SUP001"]
    assert "tpyo" in report.warnings[0].message


def test_suppression_for_unselected_family_is_not_warned(tmp_path):
    target = tmp_path / "engine" / "x.py"
    target.parent.mkdir()
    target.write_text(
        "def f(sim, fn):\n"
        "    sim.domains[0].post(0.1, fn)  # repro: allow-cross-domain-schedule\n"
    )
    report = check_paths([str(target)], select=["DET"])
    assert report.violations == []
    assert report.warnings == []


# ----------------------------------------------------------------------
# Baseline accounting
# ----------------------------------------------------------------------

def test_baseline_grandfathers_and_counts():
    path = fixture("engine", "dom002_foreign_state.py")
    entry = BaselineEntry(file="dom002_foreign_state.py", rule="DOM002")
    report = check_paths([path], baseline=[entry])
    assert report.violations == []
    assert report.baselined == 1
    assert entry.used


def test_stale_baseline_entry_is_warned():
    path = fixture("engine", "clean_partitioned.py")
    entry = BaselineEntry(file="clean_partitioned.py", rule="DOM001", line=99)
    report = check_paths([path], baseline=[entry])
    assert report.violations == []
    assert [w.rule for w in report.warnings] == ["SUP002"]
    assert report.clean


def test_stale_entry_for_unselected_rule_is_silent():
    path = fixture("engine", "clean_partitioned.py")
    entry = BaselineEntry(file="clean_partitioned.py", rule="DOM001")
    report = check_paths([path], baseline=[entry], select=["PORT"])
    assert report.warnings == []


# ----------------------------------------------------------------------
# Ownership model
# ----------------------------------------------------------------------

def test_aliases_from_assignment_and_iteration():
    model = ModuleModel(
        "def f(sim, emulation):\n"
        "    d = sim.domains[0]\n"
        "    for c in emulation.cores:\n"
        "        pass\n"
        "    hs = [h for h in emulation.hosts]\n"
        "    return d, hs\n"
    )
    fn = model.functions[0][0]
    aliases = model.aliases(fn)
    assert aliases == {"d": "domain", "c": "core", "h": "host"}


def test_owned_kind_classifies_subscripts_and_aliases():
    model = ModuleModel(
        "def f(sim):\n"
        "    d = sim.domains[1]\n"
        "    return d\n"
    )
    import ast

    fn = model.functions[0][0]
    aliases = model.aliases(fn)
    sub = ast.parse("sim.domains[1]").body[0].value
    name = ast.parse("d").body[0].value
    other = ast.parse("self.sim").body[0].value
    assert model.owned_kind(sub, aliases) == "domain"
    assert model.owned_kind(name, aliases) == "domain"
    assert model.owned_kind(other, aliases) is None


def test_const_number_folds_module_constants():
    model = ModuleModel("BASE = 10e-6\nDOUBLE = BASE * 2\n")
    import ast

    expr = ast.parse("DOUBLE + 1e-6").body[0].value
    assert model.const_number(expr) == pytest.approx(21e-6)
    unknown = ast.parse("x + 1").body[0].value
    assert model.const_number(unknown) is None


def test_syntax_error_is_reported_not_raised(tmp_path):
    target = tmp_path / "broken.py"
    target.write_text("def f(:\n")
    report = check_paths([str(target)])
    assert report.violations == []
    assert len(report.errors) == 1
    assert not report.clean


# ----------------------------------------------------------------------
# Performance: the acceptance bar is < 10 s over src/
# ----------------------------------------------------------------------

def test_analyzer_completes_over_src_quickly():
    t0 = time.perf_counter()
    report = check_paths([SRC])
    elapsed = time.perf_counter() - t0
    assert report.files > 50
    assert elapsed < 10.0, f"analyzer took {elapsed:.1f}s over src/"


def test_repo_src_is_clean_across_all_families():
    report = check_paths([SRC])
    assert report.violations == []
    assert report.errors == []
    assert report.warnings == []  # no stale escapes either
