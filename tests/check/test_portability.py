"""Tests for the spec-portability rules (repro.check.portability)."""

import os

import pytest

from repro.check.model import ModuleModel, check_paths
from repro.check import portability

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


def collect(source: str, path: str = "src/repro/engine/x.py"):
    return portability.collect(ModuleModel(source, path=path))


# ----------------------------------------------------------------------
# Seeded fixtures
# ----------------------------------------------------------------------

SEEDED = [
    (fixture("engine", "port001_lambda_payload.py"), "PORT001", 1),
    (fixture("engine", "port002_process_target.py"), "PORT002", 1),
    (fixture("port003_spec_drift.py"), "PORT003", 1),
]


@pytest.mark.parametrize("path,rule,count", SEEDED)
def test_fixture_trips_its_rule(path, rule, count):
    report = check_paths([path])
    assert report.violations, f"{path} produced no violations"
    assert {v.rule for v in report.violations} == {rule}
    assert len(report.violations) == count


# ----------------------------------------------------------------------
# PORT001: closures in payloads
# ----------------------------------------------------------------------

def test_port001_lambda_in_router_send():
    source = (
        "def f(router, channel, now, packet):\n"
        "    router.send(channel.delivery_time(now, 1), 0, 1, 'call', 0,\n"
        "                lambda: packet.go())\n"
    )
    assert [v.rule for v in collect(source)] == ["PORT001"]


def test_port001_nested_function_in_domain_message():
    source = (
        "def f(now):\n"
        "    def callback():\n"
        "        pass\n"
        "    return DomainMessage(now, 0, 0, 1, 'call', 0, callback)\n"
    )
    assert [v.rule for v in collect(source)] == ["PORT001"]


def test_port001_picklable_payload_passes():
    source = (
        "def f(router, channel, now, packet_id):\n"
        "    router.send(channel.delivery_time(now, 1), 0, 1, 'deliver',\n"
        "                packet_id, ('data', 64))\n"
    )
    assert collect(source) == []


def test_port001_out_of_scope_is_ignored():
    source = (
        "def f(router, now):\n"
        "    router.send(now, 0, 1, 'call', 0, lambda: None)\n"
    )
    assert collect(source, path="src/repro/exp/runner.py") == []


# ----------------------------------------------------------------------
# PORT002: unpicklable Process targets
# ----------------------------------------------------------------------

def test_port002_lambda_nested_and_bound_targets():
    source = (
        "class Runner:\n"
        "    def go(self, ctx):\n"
        "        def _inner():\n"
        "            pass\n"
        "        a = ctx.Process(target=lambda: None)\n"
        "        b = ctx.Process(target=_inner)\n"
        "        c = ctx.Process(target=self.run)\n"
        "        return a, b, c\n"
    )
    assert [v.rule for v in collect(source)] == ["PORT002"] * 3


def test_port002_module_level_target_passes():
    source = (
        "def worker_main(conn):\n"
        "    pass\n"
        "def spawn(ctx, conn):\n"
        "    return ctx.Process(target=worker_main, args=(conn,))\n"
    )
    assert collect(source) == []


def test_port002_thread_targets_are_not_flagged():
    # Threads share the address space; closures are fine there.
    source = (
        "import threading\n"
        "def f():\n"
        "    def _beat():\n"
        "        pass\n"
        "    threading.Thread(target=_beat, daemon=True).start()\n"
    )
    assert collect(source) == []


# ----------------------------------------------------------------------
# PORT003: spec round-trip drift
# ----------------------------------------------------------------------

SPEC_CLASS = (
    "class S:\n"
    "    def __init__(self):\n"
    "        self._seed = 0\n"
    "        self._knobs = {{}}\n"
    "{extra_init}"
    "    def to_spec(self):\n"
    "        return (self._seed, {to_spec_reads})\n"
    "    @classmethod\n"
    "    def from_spec(cls, spec):\n"
    "        return cls()\n"
)


def make(extra_init="", to_spec_reads="self._knobs"):
    return SPEC_CLASS.format(extra_init=extra_init, to_spec_reads=to_spec_reads)


def test_port003_covered_fields_pass():
    assert collect(make(), path="src/repro/api.py") == []


def test_port003_uncovered_field_is_flagged():
    source = make(extra_init="        self._cache = {}\n")
    flagged = collect(source, path="src/repro/api.py")
    assert [v.rule for v in flagged] == ["PORT003"]
    assert "_cache" in flagged[0].message


def test_port003_transitive_init_and_to_spec_expansion():
    # _traffic is assigned via a helper __init__ calls, and read via a
    # helper to_spec calls: both sides expand through self-method calls.
    source = (
        "class S:\n"
        "    def __init__(self):\n"
        "        self._seed = 0\n"
        "        self._setup()\n"
        "    def _setup(self):\n"
        "        self._traffic = []\n"
        "    def _traffic_spec(self):\n"
        "        return list(self._traffic)\n"
        "    def to_spec(self):\n"
        "        return (self._seed, self._traffic_spec())\n"
        "    @classmethod\n"
        "    def from_spec(cls, spec):\n"
        "        return cls()\n"
    )
    assert collect(source, path="src/repro/api.py") == []


def test_port003_applies_outside_boundary_packages():
    source = make(extra_init="        self._stale = 1\n")
    assert collect(source, path="src/repro/tools/anything.py")


def test_port003_ignores_classes_without_the_pair():
    source = (
        "class NotASpec:\n"
        "    def __init__(self):\n"
        "        self._hidden = 1\n"
        "    def to_spec(self):\n"
        "        return {}\n"
    )
    assert collect(source, path="src/repro/api.py") == []


def test_port003_dunder_and_public_fields_are_ignored():
    source = (
        "class S:\n"
        "    def __init__(self):\n"
        "        self.name = 'x'\n"
        "        self.__private = 1\n"
        "        self._seed = 0\n"
        "    def to_spec(self):\n"
        "        return self._seed\n"
        "    @classmethod\n"
        "    def from_spec(cls, spec):\n"
        "        return cls()\n"
    )
    assert collect(source, path="src/repro/api.py") == []
