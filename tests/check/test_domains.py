"""Tests for the cross-domain safety rules (repro.check.domains)."""

import os

import pytest

from repro.check.domains import in_scope
from repro.check.model import ModuleModel, check_paths
from repro.check import domains

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def fixture(*parts: str) -> str:
    return os.path.join(FIXTURES, *parts)


def collect(source: str, path: str = "src/repro/engine/x.py"):
    return domains.collect(ModuleModel(source, path=path))


# ----------------------------------------------------------------------
# Seeded fixtures trip exactly their rule
# ----------------------------------------------------------------------

SEEDED = [
    (fixture("engine", "dom001_cross_post.py"), "DOM001", 1),
    (fixture("engine", "dom002_foreign_state.py"), "DOM002", 1),
    (fixture("engine", "dom003_unrouted_call.py"), "DOM003", 1),
    (fixture("engine", "epo001_clock_peek.py"), "EPO001", 1),
    (fixture("engine", "epo002_sublookahead.py"), "EPO002", 3),
]


@pytest.mark.parametrize("path,rule,count", SEEDED)
def test_fixture_trips_its_rule(path, rule, count):
    report = check_paths([path])
    assert report.violations, f"{path} produced no violations"
    assert {v.rule for v in report.violations} == {rule}
    assert len(report.violations) == count


def test_clean_partitioned_fixture_passes():
    report = check_paths([fixture("engine", "clean_partitioned.py")])
    assert report.violations == []
    assert report.warnings == []


# ----------------------------------------------------------------------
# Scope: engine/ and core/ only; engine/sync.py is the sanctioned home
# ----------------------------------------------------------------------

def test_scope():
    assert in_scope("src/repro/engine/parallel.py")
    assert in_scope("src/repro/core/node.py")
    assert not in_scope("src/repro/engine/sync.py")
    assert not in_scope("src/repro/apps/netperf.py")
    assert not in_scope("src/repro/tools/cli.py")


def test_out_of_scope_source_is_ignored():
    source = "def f(sim, t):\n    sim.domains[0]._now = t\n"
    assert collect(source, path="src/repro/tools/x.py") == []
    assert collect(source, path="src/repro/engine/sync.py") == []
    assert collect(source, path="src/repro/engine/x.py")


# ----------------------------------------------------------------------
# DOM001: cross-domain scheduling
# ----------------------------------------------------------------------

def test_dom001_all_kernel_entry_points():
    source = (
        "def f(sim, fn):\n"
        "    sim.domains[1].schedule(0.1, fn)\n"
        "    sim.domains[1].at(0.1, fn)\n"
        "    sim.domains[1].post(0.1, fn)\n"
        "    sim.domains[1].call_soon(fn)\n"
    )
    assert [v.rule for v in collect(source)] == ["DOM001"] * 4


def test_dom001_via_alias():
    source = (
        "def f(sim, fn):\n"
        "    d = sim.domains[2]\n"
        "    d.post(0.1, fn)\n"
    )
    assert [v.rule for v in collect(source)] == ["DOM001"]


def test_own_kernel_via_bound_attribute_is_fine():
    source = (
        "class Node:\n"
        "    def f(self, fn):\n"
        "        self.sim.post(0.1, fn)\n"
        "        self.sim.schedule(0.1, fn)\n"
    )
    assert collect(source) == []


def test_non_scheduling_domain_calls_are_fine():
    source = (
        "def f(sim, owned):\n"
        "    return {d: sim.domains[d].next_event_time() for d in owned}\n"
    )
    assert collect(source) == []


# ----------------------------------------------------------------------
# DOM002: cross-domain state writes
# ----------------------------------------------------------------------

def test_dom002_subscript_and_augassign():
    source = (
        "def f(sim, t):\n"
        "    sim.domains[0]._now = t\n"
        "    sim.domains[0]._dispatched += 1\n"
    )
    assert [v.rule for v in collect(source)] == ["DOM002"] * 2


def test_dom002_restore_progress_is_the_sanctioned_path():
    source = (
        "def f(sim, d, dispatched, now):\n"
        "    sim.domains[d].restore_progress(dispatched, now)\n"
    )
    assert collect(source) == []


def test_dom002_core_stat_patching_is_not_domain_state():
    # Stat patching on cores/hosts is the merge path's job; DOM002 is
    # scoped to domain kernels, whose clock/heap feed the digests.
    source = (
        "def f(emulation, fields):\n"
        "    core = emulation.cores[0]\n"
        "    core.cpu_busy_s = fields['busy']\n"
    )
    assert collect(source) == []


# ----------------------------------------------------------------------
# DOM003: unrouted peer calls
# ----------------------------------------------------------------------

def test_dom003_unguarded_peer_call():
    source = (
        "def f(emulation, pipe):\n"
        "    emulation.cores[3].scheduler.notify(pipe)\n"
    )
    assert [v.rule for v in collect(source, "src/repro/core/x.py")] == ["DOM003"]


def test_dom003_guard_reference_clears_the_function():
    source = (
        "def f(emulation, router, index, packet):\n"
        "    domain_of_core = emulation._domain_of_core\n"
        "    core = emulation.cores[index]\n"
        "    if domain_of_core[index] == 0:\n"
        "        core.ingress_packet(packet)\n"
    )
    assert collect(source, "src/repro/core/x.py") == []


def test_dom003_host_tables_too():
    source = (
        "def f(emulation, data):\n"
        "    for host in emulation.hosts:\n"
        "        host.deliver(data)\n"
    )
    assert [v.rule for v in collect(source, "src/repro/core/x.py")] == ["DOM003"]


# ----------------------------------------------------------------------
# EPO001: foreign clock/heap reads
# ----------------------------------------------------------------------

def test_epo001_clock_and_heap_attrs():
    source = (
        "def f(sim, d):\n"
        "    a = sim.domains[d]._now\n"
        "    b = sim.domains[d].now\n"
        "    c = len(sim.domains[d]._heap)\n"
        "    return a, b, c\n"
    )
    assert [v.rule for v in collect(source)] == ["EPO001"] * 3


def test_epo001_own_clock_is_fine():
    source = (
        "class Node:\n"
        "    def f(self):\n"
        "        return self.sim.now + self.sim._now\n"
    )
    assert collect(source) == []


# ----------------------------------------------------------------------
# EPO002: sends below the sync horizon
# ----------------------------------------------------------------------

def test_epo002_bare_now_and_small_offsets():
    source = (
        "def f(router, now, p):\n"
        "    router.send(now, 0, 1, 'deliver', 0, p)\n"
        "    router.send(now + 1e-6, 0, 1, 'deliver', 0, p)\n"
    )
    assert [v.rule for v in collect(source)] == ["EPO002"] * 2


def test_epo002_delivery_time_and_large_offsets_pass():
    source = (
        "def f(router, channel, now, p):\n"
        "    router.send(channel.delivery_time(now, 64), 0, 1, 'deliver', 0, p)\n"
        "    router.send(now + 0.001, 0, 1, 'deliver', 0, p)\n"
    )
    assert collect(source) == []


def test_epo002_module_constant_offset_is_folded():
    source = (
        "DELAY = 5e-6\n"
        "def f(router, now, p):\n"
        "    router.send(now + DELAY, 0, 1, 'deliver', 0, p)\n"
    )
    assert [v.rule for v in collect(source)] == ["EPO002"]


def test_epo002_non_router_sends_are_ignored():
    source = (
        "def f(conn, now):\n"
        "    conn.send(now)\n"
    )
    assert collect(source) == []


def test_epo002_handoff_time_is_sanctioned():
    source = (
        "def f(router, channel, now, p):\n"
        "    router.send(channel.handoff_time(now), 0, 1, 'deliver', 0, p)\n"
    )
    assert collect(source) == []


def test_epo002_min_fold_bounded_by_smallest_foldable_arg():
    # min() is provably <= its smallest constant argument, so the send
    # is below the horizon even though the other argument is opaque.
    source = (
        "def f(router, now, bound, p):\n"
        "    router.send(now + min(1e-6, bound), 0, 1, 'deliver', 0, p)\n"
    )
    assert [v.rule for v in collect(source)] == ["EPO002"]


def test_epo002_max_fold_needs_every_arg_to_fold():
    # max() with an opaque argument has no provable upper bound; a
    # fully foldable max() below the floor still trips.
    source = (
        "def f(router, now, bound, p):\n"
        "    router.send(now + max(1e-6, bound), 0, 1, 'deliver', 0, p)\n"
        "    router.send(now + max(1e-6, 2e-6), 0, 1, 'deliver', 0, p)\n"
    )
    violations = collect(source)
    assert [v.rule for v in violations] == ["EPO002"]
    assert violations[0].line == 3
