"""Seeded KERN001: per-packet departure events bypassing the batch
kernel. Exactly two sites schedule an individual descriptor as a heap
event; the delay-line admit and the per-pipe heap entry are the
sanctioned shapes and must not be flagged.
"""

from heapq import heappush


def schedule_departure_directly(sim, pipe, descriptor, now):
    # Seeded: the pre-kernel one-event-per-packet regime.
    sim.at(now + pipe.latency_s, pipe.deliver, descriptor)


def push_descriptor_entry(heap, deadline, descriptor):
    # Seeded: a descriptor-carrying heap entry.
    heappush(heap, (deadline, descriptor))


def admit_through_the_kernel(pipe, descriptor, dequeue_at, ideal_exit):
    # Sanctioned: the delay line owns the departure.
    pipe._line.admit(descriptor, dequeue_at, ideal_exit)


def push_pipe_deadline(heap, deadline, tiebreak, pipe):
    # Sanctioned: one heap entry per *pipe*, not per packet.
    heappush(heap, (deadline, tiebreak, pipe))


def allowed_probe(sim, descriptor, now):
    sim.at(now, trace, descriptor)  # repro: allow-per-packet-event


def trace(descriptor):
    return descriptor
