"""Seeded bug: wall-clock reads where only sim.now is legal (DET002).

Lives under a ``core/`` path component so the linter treats it as
simulation code. Not imported by anything — this file exists to be
linted.
"""

import time
from datetime import datetime
from time import perf_counter


def stamp_packet(packet):
    packet.created_at = time.time()  # DET002: wall clock in sim code


def measure():
    return perf_counter()  # DET002: from-import alias


def log_line():
    return f"[{datetime.now()}] event"  # DET002: datetime.now


def allowed_timing_hook():
    return time.perf_counter()  # repro: allow-wallclock
