"""Seeded ROB001 bugs: silent broad excepts in a ``core/`` path.

Exactly three handlers below swallow failures silently; the narrow,
annotated, and loud ones must not be flagged.
"""


def swallow_exception(work):
    try:
        work()
    except Exception:
        pass


def swallow_bare(work):
    try:
        work()
    except:  # noqa: E722 - the seeded bug
        ...


def swallow_in_tuple(items, work):
    for item in items:
        try:
            work(item)
        except (ValueError, BaseException):
            continue


def allowed_last_resort(work):
    try:
        work()
    except Exception:  # repro: allow-broad-except
        pass


def narrow_is_fine(work):
    try:
        work()
    except OSError:
        pass


def broad_but_loud(work):
    try:
        work()
    except Exception as error:
        raise RuntimeError("wrapped") from error
