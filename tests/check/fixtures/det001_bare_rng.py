"""Seeded bug: bare RNG construction and hidden-global draws (DET001).

Not imported by anything — this file exists to be linted.
"""

import random


def pick_loss_probability():
    rng = random.Random(7)  # DET001: bypasses the RngRegistry streams
    return rng.random()


def reseed_everything():
    random.seed(13)  # DET001: reseeds the hidden global Twister


def global_draw():
    return random.choice(["drop", "keep"])  # DET001: global-state draw
