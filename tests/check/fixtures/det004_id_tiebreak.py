"""Seeded bug: memory addresses as heap tie-breaks (DET004).

Not imported by anything — this file exists to be linted.
"""

import heapq


def push_deadline(heap, deadline, pipe):
    heapq.heappush(heap, (deadline, id(pipe), pipe))  # DET004


class Entry:
    def __init__(self, deadline):
        self.deadline = deadline

    def __lt__(self, other):
        # DET004: hash() varies across runs for address-hashed objects
        return (self.deadline, hash(self)) < (other.deadline, hash(other))
