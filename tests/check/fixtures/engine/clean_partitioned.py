"""Legal cross-domain patterns: every line here must pass DOM/EPO/PORT.

The shapes the analyzer sanctions: delivery times derived from the
channel, peer calls behind a domain guard, progress writes through
the barrier facades, and module-level Process targets.
"""

import multiprocessing


def route(sim, channel, src, dst, target, payload):
    sim.router.send(
        channel.delivery_time(sim.now, 64), src, dst, "deliver", target, payload
    )


def deliver_guarded(emulation, router, index, packet):
    domain_of_core = emulation._domain_of_core
    core = emulation.cores[index]
    if domain_of_core[index] == 0:
        core.ingress_packet(packet)
    else:
        router.send(packet.time, 0, domain_of_core[index], "deliver", index, packet)


def merge_progress(sim, worker_stats, until):
    for d, (dispatched, now) in worker_stats.items():
        sim.domains[d].restore_progress(dispatched, now)
    sim.fast_forward(until, strict=False)


def next_times(sim, owned):
    return {d: sim.domains[d].next_event_time() for d in owned}


def worker_main(conn, spec, owned):
    pass


def spawn(ctx, child_conn, spec, owned):
    return ctx.Process(target=worker_main, args=(child_conn, spec, owned))
