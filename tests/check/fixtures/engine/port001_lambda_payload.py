"""Seeded PORT001: a closure riding a cross-domain payload."""


def ship(router, channel, now, packet):
    router.send(
        channel.delivery_time(now, 64),
        0,
        1,
        "call",
        7,
        lambda: packet.retire(),
    )
