"""Seeded EPO002: cross-domain sends below the sync horizon."""

TOO_SMALL = 1e-6


def send_too_early(router, now, dst, payload):
    router.send(now, 0, dst, "deliver", 0, payload)
    router.send(now + TOO_SMALL, 0, dst, "deliver", 0, payload)
