"""Seeded EPO002: cross-domain sends below the sync horizon."""

TOO_SMALL = 1e-6


def send_too_early(router, now, dst, payload):
    router.send(now, 0, dst, "deliver", 0, payload)
    router.send(now + TOO_SMALL, 0, dst, "deliver", 0, payload)


def send_min_folded_below_floor(router, now, dst, payload, channel_bound):
    # A min() is bounded above by its smallest foldable argument even
    # when the other arguments are opaque: this delivery can constant-
    # fold to now + 1e-6, below every pairwise horizon.
    router.send(now + min(TOO_SMALL, channel_bound), 0, dst, "x", 0, payload)
