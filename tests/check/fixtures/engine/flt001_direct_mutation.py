"""Seeded FLT001: link state mutated outside the sanctioned fault
applier — a direct ``set_link_up`` call and a latency assignment, the
two shapes the rule must flag in engine/core scope."""


def kill_link_imperatively(emulation, link_id):
    emulation.set_link_up(link_id, False)


def stretch_latency(pipe):
    pipe.latency_s = pipe.latency_s * 2.0
