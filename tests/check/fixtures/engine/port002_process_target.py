"""Seeded PORT002: a Process target that cannot be pickled."""

import multiprocessing


def launch(conn):
    def _child():
        conn.send(("hb",))

    return multiprocessing.Process(target=_child, daemon=True)
