"""Seeded EPO001: reading another domain's clock outside the barrier."""


def is_behind(sim, d, horizon):
    return sim.domains[d]._now < horizon
