"""Seeded DOM002: mutating another domain's kernel state."""


def patch_clocks(sim, until):
    for domain in sim.domains:
        domain._now = until
