"""Seeded DOM001: scheduling directly onto another domain's kernel."""


def broadcast_tick(sim, fn):
    for d in range(len(sim.domains)):
        sim.domains[d].post(sim.now + 0.001, fn)
