"""Seeded DOM003: poking a peer core with no domain guard in sight."""


def poke_peer(emulation, index, pipe):
    core = emulation.cores[index]
    core.scheduler.notify(pipe)
