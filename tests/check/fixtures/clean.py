"""A file every rule should pass.

Not imported by anything — this file exists to be linted.
"""

import heapq

from repro.engine.randomness import RngRegistry


def pick_loss_probability(registry: RngRegistry):
    return registry.stream("loss").random()


def fanout(sim, peers, delay_s):
    for peer in sorted(peers):
        sim.schedule(delay_s, peer.poke)


def push_deadline(heap, deadline, seq, pipe):
    heapq.heappush(heap, (deadline, seq, pipe))
