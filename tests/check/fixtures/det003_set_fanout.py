"""Seeded bug: set-ordered iteration feeding the event heap (DET003).

Not imported by anything — this file exists to be linted.
"""


def fanout(sim, peers, delay_s):
    for peer in set(peers):  # DET003: heap seq numbers now depend on set order
        sim.schedule(delay_s, peer.poke)


def drain(sim, waiters):
    for key in waiters.keys():  # DET003: unsorted dict.keys() into at()
        sim.at(1.0, waiters[key])


def deterministic_fanout(sim, peers, delay_s):
    for peer in sorted(set(peers)):  # fine: sorted() pins the order
        sim.schedule(delay_s, peer.poke)
