"""Seeded PORT003: a persistent field that misses the spec round-trip."""


class MiniScenario:
    def __init__(self, name):
        self._name = name
        self._seed = 0
        self._route_cache = {}

    def to_spec(self):
        return {"name": self._name, "seed": self._seed}

    @classmethod
    def from_spec(cls, spec):
        scenario = cls(spec["name"])
        scenario._seed = spec["seed"]
        return scenario
