"""Seeded bug: event callback capturing a mutable packet (NED001).

Not imported by anything — this file exists to be linted.
"""


def arm_retransmit(sim, packet, rto_s):
    # NED001: `packet` can mutate between scheduling and dispatch; the
    # callback sees whatever it is *then*, not what it was *now*.
    sim.schedule(rto_s, lambda: resend(packet))


def arm_retransmit_ok(sim, packet, rto_s):
    sim.schedule(rto_s, resend, packet)  # fine: bound as an argument


def resend(packet):
    return packet
