"""Tests for the runtime sanitizer (repro.check.sanitize)."""

import random  # repro: allow-rng (tests construct deliberate faults)

import pytest

from repro.api import Scenario
from repro.check.sanitize import (
    DispatchRecord,
    SimSanitizer,
    _first_divergence,
    compare_runs,
    sanitize_scenario,
)
from repro.engine.simulator import Simulator
from repro.topology import dumbbell_topology


def _tiny_scenario() -> Scenario:
    return (
        Scenario.from_topology(
            dumbbell_topology(
                clients_per_side=2,
                access_bandwidth_bps=10e6,
                bottleneck_bandwidth_bps=2e6,
            )
        )
        .netperf(flows=2)
        .observe(False)
    )


# ----------------------------------------------------------------------
# Recording basics
# ----------------------------------------------------------------------

def test_sanitizer_records_time_seq_callsite():
    sim = Simulator()
    sanitizer = SimSanitizer().attach(sim)

    def ping():
        pass

    sim.schedule(0.5, ping)
    sim.schedule(1.0, ping)
    sim.run()
    sanitizer.detach()
    assert sanitizer.dispatched == 2
    assert [r.time for r in sanitizer.records] == [0.5, 1.0]
    assert [r.seq for r in sanitizer.records] == [1, 2]
    assert all("ping" in r.callsite for r in sanitizer.records)
    assert len(sanitizer.digest) == 64


def test_detach_restores_simulator_hook():
    sim = Simulator()
    sanitizer = SimSanitizer().attach(sim)
    sanitizer.detach()
    assert sim.on_dispatch is None
    with pytest.raises(RuntimeError):
        SimSanitizer().attach(Simulator()).attach(Simulator())


def test_identical_schedules_have_identical_digests():
    def run(sanitizer):
        sim = Simulator()
        sanitizer.attach(sim)
        rng = random.Random(99)
        for _ in range(50):
            sim.schedule(rng.uniform(0.0, 1.0), lambda: None)
        sim.run()

    result = compare_runs(run)
    assert result.identical
    assert result.divergence is None
    assert result.events == [50, 50]
    assert "OK" in result.summary()


# ----------------------------------------------------------------------
# Catching nondeterminism
# ----------------------------------------------------------------------

def test_unseeded_rng_fault_caught_with_first_divergence():
    """A deliberately nondeterministic toy: 10 deterministic events,
    then one whose timestamp comes from OS entropy. The sanitizer must
    pinpoint the first divergent event, not just 'digests differ'."""

    def run(sanitizer):
        sim = Simulator()
        sanitizer.attach(sim)
        for i in range(10):
            sim.at(float(i) * 0.1, lambda: None)
        unseeded = random.Random()  # OS entropy: differs per run
        sim.at(2.0 + unseeded.random() * 1e-3, _chaos_event)
        sim.run()

    result = compare_runs(run, seed=0)
    assert not result.identical
    divergence = result.divergence
    assert divergence is not None
    assert divergence.index == 10  # the 11th event is the fault
    assert divergence.first.time != divergence.second.time
    assert divergence.first.time == pytest.approx(2.0, abs=2e-3)
    assert "_chaos_event" in divergence.first.callsite
    assert "NONDETERMINISTIC" in result.summary()


def _chaos_event():
    pass


def test_set_ordered_fanout_caught():
    """Iterating a set of objects into the heap gives run-dependent
    sequence numbers (set order hashes on addresses)."""

    class Peer:
        def poke(self):
            pass

    def run(sanitizer):
        sim = Simulator()
        sanitizer.attach(sim)
        peers = {Peer() for _ in range(8)}
        for peer in peers:
            sim.schedule(0.1, peer.poke)
        sim.run()

    results = [compare_runs(run) for _ in range(5)]
    # Address-hash ordering is not guaranteed to differ on any single
    # double-run; over several it effectively always does. When caught,
    # the divergence must be classified as a same-timestamp tie flip.
    caught = [r for r in results if not r.identical]
    for result in caught:
        assert result.divergence.tie_order_only
        assert result.divergence.time == pytest.approx(0.1)


def test_trace_length_mismatch_is_divergence():
    a = [DispatchRecord(0.1, 1, "f")]
    b = [DispatchRecord(0.1, 1, "f"), DispatchRecord(0.2, 2, "g")]
    divergence = _first_divergence(a, b)
    assert divergence.index == 1
    assert divergence.first is None
    assert divergence.second == b[1]
    assert not divergence.tie_order_only


def test_tie_flip_detection():
    a = [DispatchRecord(0.1, 1, "f"), DispatchRecord(0.1, 2, "g")]
    b = [DispatchRecord(0.1, 2, "g"), DispatchRecord(0.1, 1, "f")]
    divergence = _first_divergence(a, b)
    assert divergence.index == 0
    assert divergence.tie_order_only
    genuine = [DispatchRecord(0.1, 1, "f"), DispatchRecord(0.3, 9, "h")]
    divergence = _first_divergence(a, genuine)
    assert divergence.index == 1
    assert not divergence.tie_order_only


# ----------------------------------------------------------------------
# Scenario-level equality (the acceptance bar)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seeded_scenario_double_run_digest_equality(seed):
    result = sanitize_scenario(_tiny_scenario, until=0.5, seed=seed)
    assert result.identical, result.summary()
    assert result.events[0] > 0
    assert result.events[0] == result.events[1]


def test_scenario_with_unseeded_traffic_caught():
    def make():
        scenario = _tiny_scenario()

        def chaos(emulation):
            rng = random.Random()  # unseeded
            emulation.sim.schedule(rng.uniform(0.01, 0.4), _chaos_event)

        return scenario.traffic(chaos)

    result = sanitize_scenario(make, until=0.5, seed=1)
    assert not result.identical
    assert result.divergence is not None


# ----------------------------------------------------------------------
# Packet freezing
# ----------------------------------------------------------------------

def test_frozen_packet_rejects_mutation():
    from repro.net.packet import Packet

    sim = Simulator()
    sanitizer = SimSanitizer(freeze_packets=True).attach(sim)
    try:
        loose = Packet(0, 1, 100, "udp")
        loose.size_bytes = 120  # not frozen: writable
        frozen = Packet(0, 1, 100, "udp")
        sanitizer.freeze(frozen)
        with pytest.raises(AttributeError, match="enqueued"):
            frozen.size_bytes = 140
    finally:
        sanitizer.detach()
    # Detach restores normal semantics.
    frozen.size_bytes = 140
    assert frozen.size_bytes == 140


def test_scenario_run_is_freeze_clean():
    """The real stack never mutates a packet after pipe acceptance."""
    result = sanitize_scenario(
        _tiny_scenario, until=0.3, seed=1, freeze_packets=True
    )
    assert result.identical, result.summary()


# ----------------------------------------------------------------------
# Multiprocess backend
# ----------------------------------------------------------------------

def test_sanitize_scenario_multiprocess_varies_workers():
    from repro.check.sanitize import sanitize_scenario_multiprocess
    from repro.topology import ring_topology

    def make():
        return (
            Scenario(
                ring_topology(num_routers=8, vns_per_router=2),
                name="ring8",
            )
            .distill("hop-by-hop")
            .assign(4)
            .netperf(flows=8)
            .observe(False)
            .backend("multiprocess", domains=4)
        )

    result = sanitize_scenario_multiprocess(
        make, until=0.03, seed=1, runs=2, worker_counts=(1, 2)
    )
    assert result.identical, result.summary()
    assert result.events[0] == result.events[1] > 0
