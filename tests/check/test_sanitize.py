"""Tests for the runtime sanitizer (repro.check.sanitize)."""

import random  # repro: allow-rng (tests construct deliberate faults)

import pytest

from repro.api import Scenario
from repro.check.sanitize import (
    DispatchRecord,
    SimSanitizer,
    _first_divergence,
    compare_runs,
    compose_domain_digests,
    sanitize_scenario,
)
from repro.engine.simulator import Simulator
from repro.topology import dumbbell_topology


def _tiny_scenario() -> Scenario:
    return (
        Scenario.from_topology(
            dumbbell_topology(
                clients_per_side=2,
                access_bandwidth_bps=10e6,
                bottleneck_bandwidth_bps=2e6,
            )
        )
        .netperf(flows=2)
        .observe(False)
    )


# ----------------------------------------------------------------------
# Recording basics
# ----------------------------------------------------------------------

def test_sanitizer_records_time_seq_callsite():
    sim = Simulator()
    sanitizer = SimSanitizer().attach(sim)

    def ping():
        pass

    sim.schedule(0.5, ping)
    sim.schedule(1.0, ping)
    sim.run()
    sanitizer.detach()
    assert sanitizer.dispatched == 2
    assert [r.time for r in sanitizer.records] == [0.5, 1.0]
    assert [r.seq for r in sanitizer.records] == [1, 2]
    assert all("ping" in r.callsite for r in sanitizer.records)
    assert len(sanitizer.digest) == 64


def test_detach_restores_simulator_hook():
    sim = Simulator()
    sanitizer = SimSanitizer().attach(sim)
    sanitizer.detach()
    assert sim.on_dispatch is None
    with pytest.raises(RuntimeError):
        SimSanitizer().attach(Simulator()).attach(Simulator())


def test_identical_schedules_have_identical_digests():
    def run(sanitizer):
        sim = Simulator()
        sanitizer.attach(sim)
        rng = random.Random(99)
        for _ in range(50):
            sim.schedule(rng.uniform(0.0, 1.0), lambda: None)
        sim.run()

    result = compare_runs(run)
    assert result.identical
    assert result.divergence is None
    assert result.events == [50, 50]
    assert "OK" in result.summary()


# ----------------------------------------------------------------------
# Catching nondeterminism
# ----------------------------------------------------------------------

def test_unseeded_rng_fault_caught_with_first_divergence():
    """A deliberately nondeterministic toy: 10 deterministic events,
    then one whose timestamp comes from OS entropy. The sanitizer must
    pinpoint the first divergent event, not just 'digests differ'."""

    def run(sanitizer):
        sim = Simulator()
        sanitizer.attach(sim)
        for i in range(10):
            sim.at(float(i) * 0.1, lambda: None)
        unseeded = random.Random()  # OS entropy: differs per run
        sim.at(2.0 + unseeded.random() * 1e-3, _chaos_event)
        sim.run()

    result = compare_runs(run, seed=0)
    assert not result.identical
    divergence = result.divergence
    assert divergence is not None
    assert divergence.index == 10  # the 11th event is the fault
    assert divergence.first.time != divergence.second.time
    assert divergence.first.time == pytest.approx(2.0, abs=2e-3)
    assert "_chaos_event" in divergence.first.callsite
    assert "NONDETERMINISTIC" in result.summary()


def _chaos_event():
    pass


def test_set_ordered_fanout_caught():
    """Iterating a set of objects into the heap gives run-dependent
    sequence numbers (set order hashes on addresses)."""

    class Peer:
        def poke(self):
            pass

    def run(sanitizer):
        sim = Simulator()
        sanitizer.attach(sim)
        peers = {Peer() for _ in range(8)}
        for peer in peers:
            sim.schedule(0.1, peer.poke)
        sim.run()

    results = [compare_runs(run) for _ in range(5)]
    # Address-hash ordering is not guaranteed to differ on any single
    # double-run; over several it effectively always does. When caught,
    # the divergence must be classified as a same-timestamp tie flip.
    caught = [r for r in results if not r.identical]
    for result in caught:
        assert result.divergence.tie_order_only
        assert result.divergence.time == pytest.approx(0.1)


def test_trace_length_mismatch_is_divergence():
    a = [DispatchRecord(0.1, 1, "f")]
    b = [DispatchRecord(0.1, 1, "f"), DispatchRecord(0.2, 2, "g")]
    divergence = _first_divergence(a, b)
    assert divergence.index == 1
    assert divergence.first is None
    assert divergence.second == b[1]
    assert not divergence.tie_order_only


def test_tie_flip_detection():
    a = [DispatchRecord(0.1, 1, "f"), DispatchRecord(0.1, 2, "g")]
    b = [DispatchRecord(0.1, 2, "g"), DispatchRecord(0.1, 1, "f")]
    divergence = _first_divergence(a, b)
    assert divergence.index == 0
    assert divergence.tie_order_only
    genuine = [DispatchRecord(0.1, 1, "f"), DispatchRecord(0.3, 9, "h")]
    divergence = _first_divergence(a, genuine)
    assert divergence.index == 1
    assert not divergence.tie_order_only


def test_tie_flip_ignores_heap_sequence_pairing():
    """An insertion-order flip re-pairs seq numbers with callsites
    (the heap assigns seq in insertion order), so the classifier must
    compare the timestamp group on (time, callsite) only."""
    a = [DispatchRecord(0.1, 1, "f"), DispatchRecord(0.1, 2, "g")]
    b = [DispatchRecord(0.1, 1, "g"), DispatchRecord(0.1, 2, "f")]
    divergence = _first_divergence(a, b)
    assert divergence.index == 0
    assert divergence.tie_order_only


def test_tie_flip_group_extends_past_equal_prefix_records():
    # Divergence mid-group: earlier records at the tied timestamp
    # matched exactly, but they still belong to the comparison window.
    a = [
        DispatchRecord(0.1, 1, "x"),
        DispatchRecord(0.1, 2, "f"),
        DispatchRecord(0.1, 3, "g"),
        DispatchRecord(0.2, 4, "h"),
    ]
    b = [a[0], DispatchRecord(0.1, 2, "g"), DispatchRecord(0.1, 3, "f"), a[3]]
    divergence = _first_divergence(a, b)
    assert divergence.index == 1
    assert divergence.tie_order_only


def test_same_timestamp_different_events_is_not_tie_flip():
    a = [DispatchRecord(0.1, 1, "f")]
    b = [DispatchRecord(0.1, 1, "g")]
    divergence = _first_divergence(a, b)
    assert divergence.index == 0
    assert divergence.time == pytest.approx(0.1)
    assert not divergence.tie_order_only


def _flip_a():
    pass


def _flip_b():
    pass


def test_insertion_order_flip_classified_end_to_end():
    """Deterministic tie-flip repro: the second run inserts the two
    same-timestamp events in the opposite order. compare_runs must
    flag the divergence AND classify it as tie-order-only."""
    runs_so_far = []

    def run(sanitizer):
        sim = Simulator()
        sanitizer.attach(sim)
        callbacks = [_flip_a, _flip_b]
        if runs_so_far:
            callbacks.reverse()
        runs_so_far.append(True)
        for fn in callbacks:
            sim.schedule(0.1, fn)
        sim.run()

    result = compare_runs(run)
    assert not result.identical
    assert result.divergence is not None
    assert result.divergence.index == 0
    assert result.divergence.time == pytest.approx(0.1)
    assert result.divergence.tie_order_only
    assert "same-timestamp events changed relative order" in result.summary()


# ----------------------------------------------------------------------
# Scenario-level equality (the acceptance bar)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("seed", [1, 2, 3])
def test_seeded_scenario_double_run_digest_equality(seed):
    result = sanitize_scenario(_tiny_scenario, until=0.5, seed=seed)
    assert result.identical, result.summary()
    assert result.events[0] > 0
    assert result.events[0] == result.events[1]


def test_scenario_with_unseeded_traffic_caught():
    def make():
        scenario = _tiny_scenario()

        def chaos(emulation):
            rng = random.Random()  # unseeded
            emulation.sim.schedule(rng.uniform(0.01, 0.4), _chaos_event)

        return scenario.traffic(chaos)

    result = sanitize_scenario(make, until=0.5, seed=1)
    assert not result.identical
    assert result.divergence is not None


# ----------------------------------------------------------------------
# Packet freezing
# ----------------------------------------------------------------------

def test_frozen_packet_rejects_mutation():
    from repro.net.packet import Packet

    sim = Simulator()
    sanitizer = SimSanitizer(freeze_packets=True).attach(sim)
    try:
        loose = Packet(0, 1, 100, "udp")
        loose.size_bytes = 120  # not frozen: writable
        frozen = Packet(0, 1, 100, "udp")
        sanitizer.freeze(frozen)
        with pytest.raises(AttributeError, match="enqueued"):
            frozen.size_bytes = 140
    finally:
        sanitizer.detach()
    # Detach restores normal semantics.
    frozen.size_bytes = 140
    assert frozen.size_bytes == 140


def test_scenario_run_is_freeze_clean():
    """The real stack never mutates a packet after pipe acceptance."""
    result = sanitize_scenario(
        _tiny_scenario, until=0.3, seed=1, freeze_packets=True
    )
    assert result.identical, result.summary()


# ----------------------------------------------------------------------
# Domain digest composition
# ----------------------------------------------------------------------

def test_compose_domain_digests_with_empty_domain():
    import hashlib

    empty = hashlib.sha256(b"").hexdigest()
    active = hashlib.sha256(b"events").hexdigest()
    with_idle = compose_domain_digests({0: active, 1: empty})
    # An idle domain is part of the run's identity: dropping it must
    # change the composition (a 2-domain run with one idle domain is
    # not the same execution as a 1-domain run).
    assert with_idle != compose_domain_digests({0: active})
    # Composition is keyed and sorted by domain id, not dict order.
    assert compose_domain_digests({1: empty, 0: active}) == with_idle
    # Degenerate case: no domains at all folds to the empty digest.
    assert compose_domain_digests({}) == empty


def test_partitioned_attach_composes_over_idle_domain():
    """A 2-domain partitioned run where every event lands in domain 0:
    the idle domain contributes an empty-stream digest, and the
    sanitizer's digest is the composition over both."""
    import hashlib

    from repro.engine.sync import PartitionedSimulator

    sim = PartitionedSimulator(2, lookahead=0.01)
    sanitizer = SimSanitizer().attach(sim)
    sim.at(0.1, _chaos_event)  # domain 0; domain 1 never dispatches
    sim.run(until=0.2)
    digests = sanitizer.domain_digests()
    assert sanitizer.domain_counts() == {0: 1, 1: 0}
    assert digests[1] == hashlib.sha256(b"").hexdigest()
    assert sanitizer.digest == compose_domain_digests(digests)
    sanitizer.detach()
    assert sanitizer.dispatched == 1
    assert [r.time for r in sanitizer.records] == [0.1]


# ----------------------------------------------------------------------
# Multiprocess backend
# ----------------------------------------------------------------------

def test_sanitize_scenario_multiprocess_varies_workers():
    from repro.check.sanitize import sanitize_scenario_multiprocess
    from repro.topology import ring_topology

    def make():
        return (
            Scenario(
                ring_topology(num_routers=8, vns_per_router=2),
                name="ring8",
            )
            .distill("hop-by-hop")
            .assign(4)
            .netperf(flows=8)
            .observe(False)
            .backend("multiprocess", domains=4)
        )

    result = sanitize_scenario_multiprocess(
        make, until=0.03, seed=1, runs=2, worker_counts=(1, 2)
    )
    assert result.identical, result.summary()
    assert result.events[0] == result.events[1] > 0
