"""Tests for link classification and annotation policies."""

import random

import pytest

from repro.topology import (
    LinkKind,
    NodeKind,
    Topology,
    annotate_links,
    classify_link,
)
from repro.topology.annotate import LinkClassParams


def build_mixed():
    topology = Topology()
    client = topology.add_node(NodeKind.CLIENT)
    stub_a = topology.add_node(NodeKind.STUB)
    stub_b = topology.add_node(NodeKind.STUB)
    transit_a = topology.add_node(NodeKind.TRANSIT)
    transit_b = topology.add_node(NodeKind.TRANSIT)
    links = {
        "client-stub": topology.add_link(client.id, stub_a.id, 1e6, 1e-3),
        "stub-stub": topology.add_link(stub_a.id, stub_b.id, 1e6, 1e-3),
        "stub-transit": topology.add_link(stub_b.id, transit_a.id, 1e6, 1e-3),
        "transit-transit": topology.add_link(
            transit_a.id, transit_b.id, 1e6, 1e-3
        ),
        "client-transit": topology.add_link(client.id, transit_b.id, 1e6, 1e-3),
    }
    return topology, links


def test_classification():
    topology, links = build_mixed()
    assert classify_link(topology, links["client-stub"]) is LinkKind.CLIENT_STUB
    assert classify_link(topology, links["stub-stub"]) is LinkKind.STUB_STUB
    assert classify_link(topology, links["stub-transit"]) is LinkKind.STUB_TRANSIT
    assert (
        classify_link(topology, links["transit-transit"])
        is LinkKind.TRANSIT_TRANSIT
    )
    # Client attachment dominates.
    assert (
        classify_link(topology, links["client-transit"]) is LinkKind.CLIENT_STUB
    )


def test_annotate_applies_sampled_ranges():
    topology, links = build_mixed()
    params = {
        LinkKind.TRANSIT_TRANSIT: LinkClassParams(
            bandwidth_bps=(155e6, 155e6),
            latency_s=(0.01, 0.01),
            cost=(20, 40),
            queue_limit=200,
        ),
    }
    count = annotate_links(topology, params, random.Random(5))
    assert count == 1
    link = links["transit-transit"]
    assert link.bandwidth_bps == pytest.approx(155e6)
    assert 20 <= link.cost <= 40
    assert link.queue_limit == 200
    assert link.attrs["annotated"]
    # Unlisted classes untouched.
    assert links["stub-stub"].bandwidth_bps == pytest.approx(1e6)


def test_annotate_only_missing_skips_marked():
    topology, links = build_mixed()
    params = {
        LinkKind.STUB_STUB: LinkClassParams(
            bandwidth_bps=(9e6, 9e6), latency_s=(0.002, 0.002)
        )
    }
    annotate_links(topology, params, random.Random(1))
    links["stub-stub"].bandwidth_bps = 123.0
    count = annotate_links(
        topology, params, random.Random(1), only_missing=True
    )
    assert count == 0
    assert links["stub-stub"].bandwidth_bps == 123.0


def test_annotate_deterministic():
    topology_a, _ = build_mixed()
    topology_b, _ = build_mixed()
    params = {
        LinkKind.STUB_STUB: LinkClassParams(
            bandwidth_bps=(1e6, 9e6), latency_s=(0.001, 0.05), cost=(1, 5)
        )
    }
    annotate_links(topology_a, params, random.Random(42))
    annotate_links(topology_b, params, random.Random(42))
    for link_id in topology_a.links:
        assert (
            topology_a.links[link_id].cost == topology_b.links[link_id].cost
        )
