"""Unit and property tests for topology generators."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import (
    NodeKind,
    chain_topology,
    dumbbell_topology,
    full_mesh_topology,
    ring_topology,
    star_topology,
    waxman_topology,
)


def test_chain_structure():
    topology = chain_topology(num_client_pairs=3, hops=4)
    # Each pair: sender + receiver + (hops-1) interior routers.
    assert topology.num_nodes == 3 * (2 + 3)
    assert topology.num_links == 3 * 4
    assert len(topology.clients()) == 6


def test_chain_single_hop_direct_link():
    topology = chain_topology(num_client_pairs=1, hops=1, latency_s=0.01)
    assert topology.num_nodes == 2
    assert topology.num_links == 1
    link = next(iter(topology.links.values()))
    assert link.latency_s == pytest.approx(0.01)


def test_chain_latency_split_across_hops():
    topology = chain_topology(num_client_pairs=1, hops=5, latency_s=0.010)
    total = sum(l.latency_s for l in topology.links.values())
    assert total == pytest.approx(0.010)


def test_chain_rejects_zero_hops():
    with pytest.raises(ValueError):
        chain_topology(1, 0)


def test_star_two_hop_paths():
    topology = star_topology(10)
    assert topology.num_nodes == 11
    assert topology.num_links == 10
    hub = topology.nodes_of_kind(NodeKind.TRANSIT)[0]
    assert topology.degree(hub.id) == 10


def test_ring_counts_match_paper():
    # Paper Fig. 5 setup: 20 routers x 20 VNs -> 400 VNs, 420 links
    # (400 access + 20 ring).
    topology = ring_topology(num_routers=20, vns_per_router=20)
    assert len(topology.clients()) == 400
    assert topology.num_links == 420
    assert topology.is_connected()


def test_ring_rejects_tiny_ring():
    with pytest.raises(ValueError):
        ring_topology(num_routers=2)


def test_dumbbell_bottleneck():
    topology = dumbbell_topology(clients_per_side=4)
    assert len(topology.clients()) == 8
    stubs = topology.nodes_of_kind(NodeKind.STUB)
    assert len(stubs) == 2
    bottleneck = topology.link_between(stubs[0].id, stubs[1].id)
    assert bottleneck.bandwidth_bps == pytest.approx(1.5e6)


def test_full_mesh_pair_attributes():
    topology = full_mesh_topology(
        4,
        bandwidth_fn=lambda i, j: (i + j + 1) * 1e6,
        latency_fn=lambda i, j: (i + j + 1) * 0.01,
    )
    assert topology.num_links == 6
    link = topology.link_between(0, 3)
    assert link.bandwidth_bps == pytest.approx(4e6)
    assert link.latency_s == pytest.approx(0.04)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), routers=st.integers(2, 20))
def test_waxman_always_connected(seed, routers):
    topology = waxman_topology(routers, random.Random(seed))
    assert topology.is_connected()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 1000))
def test_waxman_deterministic_given_seed(seed):
    a = waxman_topology(10, random.Random(seed), clients_per_router=2)
    b = waxman_topology(10, random.Random(seed), clients_per_router=2)
    assert a.num_links == b.num_links
    for link_id, link in a.links.items():
        other = b.links[link_id]
        assert (link.a, link.b) == (other.a, other.b)
        assert link.latency_s == other.latency_s


def test_waxman_positive_latencies():
    topology = waxman_topology(15, random.Random(3))
    assert all(l.latency_s > 0 for l in topology.links.values())
