"""Unit and property tests for GML import/export."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import (
    NodeKind,
    Topology,
    TopologyError,
    parse_gml,
    to_gml,
    load_gml,
    save_gml,
    ring_topology,
    waxman_topology,
)

SAMPLE = """
# comment line
graph [
  name "sample"
  node [ id 0 kind "client" label "alice" ]
  node [ id 1 kind "stub" ]
  node [ id 2 kind "transit" region "us-east" ]
  edge [ source 0 target 1 bandwidth 2000000.0 latency 0.001 ]
  edge [
    source 1 target 2
    bandwidth 45000000.0 latency 0.02 loss 0.01 queue 100 cost 12.5
    medium "fiber"
  ]
]
"""


def test_parse_sample():
    topology = parse_gml(SAMPLE)
    assert topology.name == "sample"
    assert topology.num_nodes == 3
    assert topology.num_links == 2
    assert topology.node(0).kind is NodeKind.CLIENT
    assert topology.node(0).attrs["label"] == "alice"
    assert topology.node(2).attrs["region"] == "us-east"
    link = topology.link_between(1, 2)
    assert link.bandwidth_bps == 45e6
    assert link.latency_s == pytest.approx(0.02)
    assert link.loss_rate == pytest.approx(0.01)
    assert link.queue_limit == 100
    assert link.cost == pytest.approx(12.5)
    assert link.attrs["medium"] == "fiber"


def test_edge_defaults_applied():
    topology = parse_gml(
        'graph [ node [ id 0 ] node [ id 1 ] edge [ source 0 target 1 ] ]'
    )
    link = topology.link_between(0, 1)
    assert link.bandwidth_bps == 1e6
    assert link.queue_limit == 50


def test_missing_graph_block_raises():
    with pytest.raises(TopologyError):
        parse_gml("node [ id 0 ]")


def test_node_without_id_raises():
    with pytest.raises(TopologyError):
        parse_gml('graph [ node [ kind "client" ] ]')


def test_edge_without_endpoints_raises():
    with pytest.raises(TopologyError):
        parse_gml("graph [ node [ id 0 ] edge [ source 0 ] ]")


def test_quoted_strings_with_escapes():
    topology = parse_gml(
        'graph [ node [ id 0 label "say \\"hi\\"" ] ]'
    )
    assert topology.node(0).attrs["label"] == 'say "hi"'


def _assert_topologies_equal(original: Topology, parsed: Topology):
    assert parsed.num_nodes == original.num_nodes
    assert parsed.num_links == original.num_links
    for node_id, node in original.nodes.items():
        assert parsed.node(node_id).kind is node.kind
    original_links = sorted(
        (min(l.a, l.b), max(l.a, l.b), l.bandwidth_bps, l.latency_s, l.loss_rate)
        for l in original.links.values()
    )
    parsed_links = sorted(
        (min(l.a, l.b), max(l.a, l.b), l.bandwidth_bps, l.latency_s, l.loss_rate)
        for l in parsed.links.values()
    )
    assert parsed_links == pytest.approx(original_links)


def test_roundtrip_ring():
    original = ring_topology(num_routers=5, vns_per_router=2)
    parsed = parse_gml(to_gml(original))
    _assert_topologies_equal(original, parsed)


def test_roundtrip_file(tmp_path):
    original = ring_topology(num_routers=4, vns_per_router=1)
    path = tmp_path / "ring.gml"
    save_gml(original, str(path))
    loaded = load_gml(str(path))
    _assert_topologies_equal(original, loaded)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), routers=st.integers(2, 12))
def test_roundtrip_random_waxman(seed, routers):
    original = waxman_topology(routers, random.Random(seed), clients_per_router=1)
    parsed = parse_gml(to_gml(original))
    _assert_topologies_equal(original, parsed)
