"""Tests for CAIDA/BGP topology importers."""

import random

import pytest

from repro.topology import NodeKind, TopologyError
from repro.topology.importers import (
    attach_clients,
    from_adjacency_list,
    from_bgp_paths,
)

CAIDA_SAMPLE = """
# CAIDA-style AS links
701 1239
701 3356
1239 3356   extra tokens ignored
3356 7018
7018 701
"""

BGP_SAMPLE = """
# table dump
701 1239 3356
701 701 701 1239 7018
3356 7018
"""


def test_adjacency_list_structure():
    topology = from_adjacency_list(CAIDA_SAMPLE)
    assert topology.num_nodes == 4
    assert topology.num_links == 5
    assert all(n.kind is NodeKind.TRANSIT for n in topology.nodes.values())
    asns = {n.attrs["asn"] for n in topology.nodes.values()}
    assert asns == {"701", "1239", "3356", "7018"}


def test_adjacency_duplicates_and_reverses_collapse():
    topology = from_adjacency_list("1 2\n2 1\n1 2\n2 3\n")
    assert topology.num_links == 2


def test_adjacency_rejects_garbage():
    with pytest.raises(TopologyError):
        from_adjacency_list("onlyonetoken\n")
    with pytest.raises(TopologyError):
        from_adjacency_list("7 7\n")
    with pytest.raises(TopologyError):
        from_adjacency_list("# nothing\n\n")


def test_bgp_paths_infer_edges():
    topology = from_bgp_paths(BGP_SAMPLE)
    assert topology.num_nodes == 4
    # Edges: 701-1239, 1239-3356, 1239-7018, 3356-7018.
    assert topology.num_links == 4


def test_bgp_prepending_collapsed():
    topology = from_bgp_paths("65000 65000 65001\n")
    assert topology.num_links == 1


def test_bgp_rejects_empty():
    with pytest.raises(TopologyError):
        from_bgp_paths("# nothing\n65000\n")


def test_attach_clients_targets_edge_ases():
    topology = from_adjacency_list(CAIDA_SAMPLE)
    created = attach_clients(
        topology, clients_per_edge_as=2, rng=random.Random(1),
        edge_degree_at_most=2,
    )
    assert created == len(topology.clients())
    for client in topology.clients():
        attached = client.attrs["attached_as"]
        # Degree counted before clients were added.
        non_client_neighbors = [
            n for n, _l in topology.neighbors(attached)
            if topology.node(n).kind is NodeKind.TRANSIT
        ]
        assert len(non_client_neighbors) <= 2


def test_attach_clients_validation():
    topology = from_adjacency_list(CAIDA_SAMPLE)
    with pytest.raises(TopologyError):
        attach_clients(topology, 0, random.Random(1))
    # A clique has no low-degree edge ASes at threshold 1.
    clique = from_adjacency_list("1 2\n1 3\n1 4\n2 3\n2 4\n3 4\n")
    with pytest.raises(TopologyError):
        attach_clients(clique, 1, random.Random(1), edge_degree_at_most=1)


def test_imported_graph_is_emulatable():
    """End to end: import, attach clients, annotate, emulate."""
    from repro.core import EmulationConfig, ExperimentPipeline
    from repro.engine import Simulator

    topology = from_adjacency_list(CAIDA_SAMPLE)
    attach_clients(topology, 1, random.Random(1), edge_degree_at_most=3)
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    received = []
    emulation.vn(1).udp_socket(port=9, on_receive=lambda *a: received.append(1))
    emulation.vn(0).udp_socket().send_to(1, 9, 100)
    sim.run(until=1.0)
    assert received
