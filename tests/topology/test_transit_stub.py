"""Tests for the GT-ITM-style transit-stub generator."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.topology import (
    LinkKind,
    NodeKind,
    TransitStubSpec,
    classify_link,
    transit_stub_topology,
)


def test_node_counts_match_spec():
    spec = TransitStubSpec(
        transit_domains=2,
        transit_nodes_per_domain=3,
        stub_domains_per_transit_node=2,
        stub_nodes_per_domain=4,
        clients_per_stub_node=1,
    )
    topology = transit_stub_topology(spec, random.Random(1))
    assert topology.num_nodes == spec.expected_nodes
    assert len(topology.nodes_of_kind(NodeKind.TRANSIT)) == 6
    assert len(topology.nodes_of_kind(NodeKind.STUB)) == 48
    assert len(topology.clients()) == 48


def test_always_connected():
    for seed in range(5):
        spec = TransitStubSpec(transit_domains=3)
        topology = transit_stub_topology(spec, random.Random(seed))
        assert topology.is_connected()


def test_link_classes_have_expected_attributes():
    spec = TransitStubSpec()
    topology = transit_stub_topology(spec, random.Random(7))
    saw = set()
    for link in topology.links.values():
        link_class = classify_link(topology, link)
        saw.add(link_class)
        if link_class is LinkKind.TRANSIT_TRANSIT:
            assert link.bandwidth_bps == pytest.approx(50e6)
            assert 20 <= link.cost <= 40
        elif link_class is LinkKind.STUB_TRANSIT:
            assert link.bandwidth_bps == pytest.approx(25e6)
        elif link_class is LinkKind.CLIENT_STUB:
            assert link.bandwidth_bps == pytest.approx(1e6)
    assert LinkKind.TRANSIT_TRANSIT in saw
    assert LinkKind.STUB_TRANSIT in saw
    assert LinkKind.CLIENT_STUB in saw


def test_clients_attach_only_to_stubs():
    topology = transit_stub_topology(TransitStubSpec(), random.Random(3))
    for client in topology.clients():
        neighbors = list(topology.neighbors(client.id))
        assert len(neighbors) == 1
        neighbor_id, _ = neighbors[0]
        assert topology.node(neighbor_id).kind is NodeKind.STUB


def test_deterministic_given_seed():
    spec = TransitStubSpec()
    a = transit_stub_topology(spec, random.Random(11))
    b = transit_stub_topology(spec, random.Random(11))
    assert a.num_links == b.num_links
    for link_id in a.links:
        assert a.links[link_id].cost == b.links[link_id].cost


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 1000),
    domains=st.integers(1, 3),
    per_domain=st.integers(2, 4),
)
def test_property_connected_and_sized(seed, domains, per_domain):
    spec = TransitStubSpec(
        transit_domains=domains,
        transit_nodes_per_domain=per_domain,
        stub_domains_per_transit_node=1,
        stub_nodes_per_domain=2,
    )
    topology = transit_stub_topology(spec, random.Random(seed))
    assert topology.is_connected()
    assert topology.num_nodes == spec.expected_nodes
