"""Unit tests for the topology graph model."""

import pytest

from repro.topology import NodeKind, Topology, TopologyError


def build_triangle():
    topology = Topology("triangle")
    a = topology.add_node(NodeKind.CLIENT)
    b = topology.add_node(NodeKind.STUB)
    c = topology.add_node(NodeKind.TRANSIT)
    topology.add_link(a.id, b.id, 1e6, 0.001)
    topology.add_link(b.id, c.id, 2e6, 0.002)
    topology.add_link(c.id, a.id, 3e6, 0.003)
    return topology, a, b, c


def test_add_node_assigns_sequential_ids():
    topology = Topology()
    assert topology.add_node().id == 0
    assert topology.add_node().id == 1


def test_explicit_node_id_respected():
    topology = Topology()
    node = topology.add_node(node_id=10)
    assert node.id == 10
    assert topology.add_node().id == 11


def test_duplicate_node_id_rejected():
    topology = Topology()
    topology.add_node(node_id=3)
    with pytest.raises(TopologyError):
        topology.add_node(node_id=3)


def test_link_endpoints_must_exist():
    topology = Topology()
    topology.add_node()
    with pytest.raises(TopologyError):
        topology.add_link(0, 99, 1e6, 0.001)


def test_self_loop_rejected():
    topology = Topology()
    topology.add_node()
    with pytest.raises(TopologyError):
        topology.add_link(0, 0, 1e6, 0.001)


@pytest.mark.parametrize(
    "kwargs",
    [
        {"bandwidth_bps": 0, "latency_s": 0.001},
        {"bandwidth_bps": -1, "latency_s": 0.001},
        {"bandwidth_bps": 1e6, "latency_s": -0.1},
        {"bandwidth_bps": 1e6, "latency_s": 0.001, "loss_rate": 1.0},
        {"bandwidth_bps": 1e6, "latency_s": 0.001, "loss_rate": -0.1},
        {"bandwidth_bps": 1e6, "latency_s": 0.001, "queue_limit": 0},
    ],
)
def test_invalid_link_attributes_rejected(kwargs):
    topology = Topology()
    topology.add_node()
    topology.add_node()
    with pytest.raises(TopologyError):
        topology.add_link(0, 1, **kwargs)


def test_neighbors_and_degree():
    topology, a, b, c = build_triangle()
    neighbors = {n for n, _ in topology.neighbors(a.id)}
    assert neighbors == {b.id, c.id}
    assert topology.degree(a.id) == 2


def test_link_other_endpoint():
    topology, a, b, _ = build_triangle()
    link = topology.link_between(a.id, b.id)
    assert link.other(a.id) == b.id
    assert link.other(b.id) == a.id
    with pytest.raises(TopologyError):
        link.other(999)


def test_down_links_hidden_from_neighbors():
    topology, a, b, c = build_triangle()
    topology.link_between(a.id, b.id).up = False
    neighbors = {n for n, _ in topology.neighbors(a.id)}
    assert neighbors == {c.id}
    all_neighbors = {n for n, _ in topology.neighbors(a.id, include_down=True)}
    assert all_neighbors == {b.id, c.id}


def test_remove_link():
    topology, a, b, _ = build_triangle()
    link = topology.link_between(a.id, b.id)
    topology.remove_link(link.id)
    assert topology.link_between(a.id, b.id) is None
    assert topology.num_links == 2
    topology.validate()


def test_connected_components():
    topology = Topology()
    for _ in range(4):
        topology.add_node()
    topology.add_link(0, 1, 1e6, 0.001)
    topology.add_link(2, 3, 1e6, 0.001)
    assert topology.connected_components() == [[0, 1], [2, 3]]
    assert not topology.is_connected()
    topology.add_link(1, 2, 1e6, 0.001)
    assert topology.is_connected()


def test_down_link_splits_components():
    topology = Topology()
    topology.add_node()
    topology.add_node()
    link = topology.add_link(0, 1, 1e6, 0.001)
    assert topology.is_connected()
    link.up = False
    assert len(topology.connected_components()) == 2


def test_nodes_of_kind():
    topology, a, b, c = build_triangle()
    assert [n.id for n in topology.clients()] == [a.id]
    assert [n.id for n in topology.nodes_of_kind(NodeKind.TRANSIT)] == [c.id]


def test_copy_is_independent():
    topology, a, b, _ = build_triangle()
    clone = topology.copy()
    assert clone.num_nodes == topology.num_nodes
    assert clone.num_links == topology.num_links
    clone.link_between(a.id, b.id).bandwidth_bps = 999.0
    assert topology.link_between(a.id, b.id).bandwidth_bps == 1e6
    clone.add_node()
    assert clone.num_nodes == topology.num_nodes + 1


def test_copy_preserves_link_state():
    topology, a, b, _ = build_triangle()
    topology.link_between(a.id, b.id).up = False
    clone = topology.copy()
    assert not clone.link_between(a.id, b.id).up


def test_reliability():
    topology = Topology()
    topology.add_node()
    topology.add_node()
    link = topology.add_link(0, 1, 1e6, 0.001, loss_rate=0.25)
    assert link.reliability == pytest.approx(0.75)


def test_parse_node_kind():
    assert NodeKind.parse("CLIENT") is NodeKind.CLIENT
    with pytest.raises(TopologyError):
        NodeKind.parse("banana")
