"""Shared fixtures for application tests: small reference-mode
emulations that are fast to run."""

import pytest

from repro.apps.rondata import ron_topology
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import star_topology


@pytest.fixture
def star_emulation():
    """8 VNs on a 10 Mb/s star, reference mode."""
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(star_topology(8, bandwidth_bps=10e6, latency_s=0.005))
        .run(EmulationConfig.reference())
    )
    return sim, emulation


@pytest.fixture
def ron_emulation():
    """The 12-site synthetic RON mesh, reference mode."""
    sim = Simulator()
    topology, sites = ron_topology(seed=1)
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    return sim, emulation, sites
