"""Tests for Chord and CFS over the emulated RON mesh."""

import pytest

from repro.apps import BLOCK_BYTES, CfsNetwork, ChordRing, chord_id
from repro.apps.chord import in_half_open


def test_in_half_open_interval_arithmetic():
    bits = 4  # space of 16
    assert in_half_open(5, 3, 8, bits)
    assert not in_half_open(3, 3, 8, bits)
    assert in_half_open(8, 3, 8, bits)
    # Wrapping interval (14, 2]
    assert in_half_open(15, 14, 2, bits)
    assert in_half_open(1, 14, 2, bits)
    assert not in_half_open(5, 14, 2, bits)
    # Full circle
    assert in_half_open(9, 6, 6, bits)


def test_chord_id_stable_and_bounded():
    a = chord_id("block-1")
    assert a == chord_id("block-1")
    assert 0 <= a < (1 << 16)
    assert chord_id("block-1") != chord_id("block-2")


def test_ring_structure(ron_emulation):
    sim, emulation, _sites = ron_emulation
    ring = ChordRing(emulation, list(range(12)))
    ordered = sorted(ring.nodes.values(), key=lambda n: n.node_id)
    for index, node in enumerate(ordered):
        successor = ordered[(index + 1) % len(ordered)]
        assert node.successor_vn == successor.vn_id
        assert len(node.fingers) == 16


def test_owner_of_matches_successor_rule(ron_emulation):
    sim, emulation, _sites = ron_emulation
    ring = ChordRing(emulation, list(range(12)))
    ordered = sorted(ring.nodes.values(), key=lambda n: n.node_id)
    key = (ordered[3].node_id + 1) % (1 << 16)
    assert ring.owner_of(key).vn_id == ordered[4].vn_id
    # A key above the top wraps to the lowest node.
    key = (ordered[-1].node_id + 1) % (1 << 16)
    if key > ordered[-1].node_id:
        assert ring.owner_of(key).vn_id == ordered[0].vn_id


def test_lookup_finds_correct_owner(ron_emulation):
    sim, emulation, _sites = ron_emulation
    ring = ChordRing(emulation, list(range(12)))
    results = []
    keys = [chord_id(f"key-{i}") for i in range(20)]
    for key in keys:
        ring.lookup(
            0, key, on_done=lambda vn, hops, k=key: results.append((k, vn, hops))
        )
    sim.run(until=30.0)
    assert len(results) == 20
    for key, vn, hops in results:
        assert ring.owner_of(key).vn_id == vn
        assert hops <= 16


def test_lookup_takes_network_time(ron_emulation):
    sim, emulation, _sites = ron_emulation
    ring = ChordRing(emulation, list(range(12)))
    done_at = []
    key = chord_id("needs-hops")
    ring.lookup(0, key, on_done=lambda vn, hops: done_at.append(sim.now))
    sim.run(until=30.0)
    assert done_at
    # Unless resolved locally, at least one wide-area RTT elapsed.
    assert done_at[0] == 0.0 or done_at[0] > 0.005


def test_cfs_store_places_blocks_at_owners(ron_emulation):
    sim, emulation, _sites = ron_emulation
    network = CfsNetwork(emulation, list(range(12)))
    placement = network.store_file("file-A", 1_000_000)
    assert len(placement) == 123  # ceil(1 MB / 8 KB)
    for index, owner_vn in placement.items():
        key = CfsNetwork.block_key("file-A", index)
        assert network.ring.owner_of(key).vn_id == owner_vn
        assert ("file-A", index) in network.servers[owner_vn].blocks
    # Striping: blocks land on many sites.
    assert len(set(placement.values())) >= 6


def test_cfs_download_completes_and_reports_speed(ron_emulation):
    sim, emulation, _sites = ron_emulation
    network = CfsNetwork(emulation, list(range(12)))
    network.store_file("file-A", 256_000)
    speeds = []
    client = network.client(0)
    client.download(
        "file-A", 256_000, prefetch_bytes=24_576, on_done=speeds.append
    )
    sim.run(until=120.0)
    assert speeds, "download did not finish"
    assert 5_000 < speeds[0] < 2_000_000  # plausible KB/s range


def test_cfs_larger_prefetch_is_faster(ron_emulation):
    sim, emulation, _sites = ron_emulation
    network = CfsNetwork(emulation, list(range(12)))
    network.store_file("file-B", 512_000)
    speeds = {}
    for label, window, client_vn in (("small", 8_192, 1), ("large", 65_536, 2)):
        done = []
        network.client(client_vn).download(
            "file-B", 512_000, prefetch_bytes=window, on_done=done.append
        )
        sim.run(until=sim.now + 300.0)
        assert done
        speeds[label] = done[0]
    assert speeds["large"] > 1.5 * speeds["small"]
