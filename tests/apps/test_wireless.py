"""Tests for the ad hoc wireless extension."""

import random

import pytest

from repro.apps import Waypoint, WirelessNetwork
from repro.engine import Simulator


def fixed_pair(distance, **kwargs):
    sim = Simulator()
    network = WirelessNetwork(sim, rng=random.Random(1), **kwargs)
    a = network.add_node(0.0, 0.0)
    b = network.add_node(distance, 0.0)
    return sim, network, a, b


def test_in_range_delivery():
    sim, network, a, b = fixed_pair(50.0)
    got = []
    b.on_receive = lambda src, size, payload: got.append((src, size, payload, sim.now))
    a.broadcast(1000, payload="hello")
    sim.run()
    assert len(got) == 1
    src, size, payload, when = got[0]
    assert (src, size, payload) == (0, 1000, "hello")
    assert when == pytest.approx(network.airtime(1000) + network.propagation_s)


def test_out_of_range_not_delivered():
    sim, network, a, b = fixed_pair(150.0)
    got = []
    b.on_receive = lambda *args: got.append(args)
    a.broadcast(1000)
    sim.run()
    assert got == []


def test_broadcast_reaches_all_in_range():
    sim = Simulator()
    network = WirelessNetwork(sim, rng=random.Random(1))
    center = network.add_node(100.0, 100.0)
    near = [network.add_node(100.0 + dx, 100.0) for dx in (10, 50, 90)]
    far = network.add_node(100.0 + 150, 100.0)
    counts = {"near": 0, "far": 0}
    for node in near:
        node.on_receive = lambda *a: counts.__setitem__("near", counts["near"] + 1)
    far.on_receive = lambda *a: counts.__setitem__("far", counts["far"] + 1)
    center.broadcast(500)
    sim.run()
    assert counts == {"near": 3, "far": 0}


def test_unicast_overheard_but_discarded():
    sim = Simulator()
    network = WirelessNetwork(sim, rng=random.Random(1))
    sender = network.add_node(0, 0)
    target = network.add_node(10, 0)
    bystander = network.add_node(0, 10)
    got = {"target": 0, "bystander": 0}
    target.on_receive = lambda *a: got.__setitem__("target", got["target"] + 1)
    bystander.on_receive = lambda *a: got.__setitem__("bystander", got["bystander"] + 1)
    sender.send_to(target.node_id, 500)
    sim.run()
    assert got == {"target": 1, "bystander": 0}
    # The bystander's medium was still consumed by the transmission.
    assert bystander.medium_busy_until > 0


def test_carrier_sense_serializes_senders():
    """Two in-range senders never overlap: the second defers."""
    sim = Simulator()
    network = WirelessNetwork(sim, rng=random.Random(1))
    a = network.add_node(0, 0)
    b = network.add_node(10, 0)
    receiver = network.add_node(5, 5)
    arrivals = []
    receiver.on_receive = lambda src, size, payload: arrivals.append((src, sim.now))
    a.broadcast(2000)
    b.broadcast(2000)
    sim.run()
    assert len(arrivals) == 2
    assert network.collision_losses == 0
    airtime = network.airtime(2000)
    assert arrivals[1][1] - arrivals[0][1] >= airtime * 0.99


def test_hidden_terminal_collision():
    """Two senders out of range of each other but both in range of
    the middle node collide there."""
    sim = Simulator()
    network = WirelessNetwork(sim, range_m=100.0, rng=random.Random(1))
    left = network.add_node(0, 0)
    middle = network.add_node(90, 0)
    right = network.add_node(180, 0)
    got = []
    middle.on_receive = lambda *args: got.append(args)
    left.broadcast(2000)
    right.broadcast(2000)
    sim.run()
    assert network.collision_losses >= 1
    assert len(got) < 2


def test_mobility_changes_connectivity():
    sim = Simulator()
    network = WirelessNetwork(
        sim, area_m=400.0, range_m=60.0, num_nodes=12, rng=random.Random(3)
    )
    initial = network.partition_count()
    network.start_mobility(Waypoint(speed_low=20.0, speed_high=40.0), tick_s=0.5)
    partitions = {initial}
    def sample():
        partitions.add(network.partition_count())
    for t in range(1, 30):
        sim.at(float(t), sample)
    sim.run(until=30.0)
    # Topology change is the rule: the partition structure varied.
    assert len(partitions) > 1


def test_positions_stay_roughly_in_area():
    sim = Simulator()
    network = WirelessNetwork(
        sim, area_m=200.0, num_nodes=6, rng=random.Random(5)
    )
    network.start_mobility(Waypoint(speed_low=5.0, speed_high=10.0))
    sim.run(until=60.0)
    for node in network.nodes:
        assert -10 <= node.x <= 210
        assert -10 <= node.y <= 210
