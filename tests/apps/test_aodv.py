"""Tests for AODV over the wireless fabric."""

import random

import pytest

from repro.apps.aodv import AodvRouter
from repro.apps.wireless import Waypoint, WirelessNetwork
from repro.engine import Simulator


def chain_network(sim, num_nodes=5, spacing=80.0, range_m=100.0):
    """Nodes in a line, each only reaching its neighbors: multi-hop
    routes are mandatory."""
    network = WirelessNetwork(
        sim, area_m=spacing * (num_nodes + 1), range_m=range_m,
        rng=random.Random(1),
    )
    for index in range(num_nodes):
        network.add_node(index * spacing, 0.0)
    return network


def test_discovery_finds_multihop_route():
    sim = Simulator()
    network = chain_network(sim)
    router = AodvRouter(network)
    outcomes = []
    router.discover(0, 4, outcomes.append)
    sim.run(until=5.0)
    assert outcomes == [True]
    # Forward route at the origin exists and points at the neighbor.
    assert router.nodes[0]._route_to(4) == 1


def test_data_delivered_end_to_end():
    sim = Simulator()
    network = chain_network(sim)
    router = AodvRouter(network)
    got = []
    router.nodes[4].on_deliver = lambda origin, size, msg: got.append(
        (origin, size, msg)
    )
    router.send(0, 4, 500, message="hello")
    sim.run(until=10.0)
    assert got == [(0, 500, "hello")]
    assert router.delivered == 1


def test_route_cached_for_subsequent_sends():
    sim = Simulator()
    network = chain_network(sim)
    router = AodvRouter(network)
    for _ in range(5):
        router.send(0, 4, 200)
    sim.run(until=10.0)
    assert router.delivered == 5
    # One flood serves all five sends (plus none for cached routes).
    assert router.discoveries <= 2


def test_unreachable_destination_gives_up():
    sim = Simulator()
    network = chain_network(sim, num_nodes=3, spacing=80.0)
    island = network.add_node(10_000.0, 10_000.0)  # out of everyone's range
    router = AodvRouter(network)
    outcomes = []
    router.discover(0, island.node_id, outcomes.append)
    sim.run(until=30.0)
    assert outcomes == [False]
    router.send(0, island.node_id, 100)
    sim.run(until=60.0)
    assert router.delivered == 0
    assert router.data_dropped >= 1


def test_rediscovery_after_mobility_breaks_route():
    sim = Simulator()
    network = chain_network(sim)
    router = AodvRouter(network)
    router.send(0, 4, 100)
    sim.run(until=5.0)
    assert router.delivered == 1
    # Node 2 (the middle relay) walks away; cached route goes stale.
    network.nodes[2].x = 10_000.0
    network.nodes[2].y = 10_000.0
    sim.run(until=16.0)  # let the route lifetime expire
    router.send(0, 4, 100)
    sim.run(until=40.0)
    # No alternative relay exists, so discovery fails cleanly.
    assert router.delivered == 1
    assert router.data_dropped >= 1


def test_delivery_under_mild_mobility():
    sim = Simulator()
    network = WirelessNetwork(
        sim, area_m=250.0, range_m=120.0, num_nodes=12,
        rng=random.Random(7),
    )
    network.start_mobility(Waypoint(speed_low=1.0, speed_high=3.0))
    router = AodvRouter(network)
    rng = random.Random(3)
    sends = 30
    for index in range(sends):
        src, dst = rng.sample(range(12), 2)
        sim.at(1.0 + index * 0.5, router.send, src, dst, 300)
    sim.run(until=60.0)
    assert router.delivery_ratio() > 0.5
    assert router.delivered > 10
