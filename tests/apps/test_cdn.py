"""Tests for DNS-style dynamic request routing."""

import pytest

from repro.apps.cdn import (
    POLICY_CLOSEST,
    POLICY_LEAST_LOADED,
    POLICY_STATIC,
    CdnClient,
    DnsRedirector,
    deploy_cdn,
)
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import NodeKind, Topology


def two_sided_topology():
    """Clients near replica A, far from replica B, plus a redirector."""
    topology = Topology()
    hub_near = topology.add_node(NodeKind.STUB)
    hub_far = topology.add_node(NodeKind.STUB)
    topology.add_link(hub_near.id, hub_far.id, 50e6, 0.050)
    ids = {}
    for name, hub in (
        ("client0", hub_near), ("client1", hub_near),
        ("replica_near", hub_near), ("redirector", hub_near),
        ("replica_far", hub_far),
    ):
        node = topology.add_node(NodeKind.CLIENT, name=name)
        topology.add_link(hub.id, node.id, 10e6, 0.002)
        ids[name] = node.id
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    node_to_vn = {vn.node_id: vn.vn_id for vn in emulation.vns}
    vns = {name: node_to_vn[node_id] for name, node_id in ids.items()}
    return sim, emulation, vns


def test_static_policy_always_primary():
    sim, emulation, vns = two_sided_topology()
    redirector, servers, agents = deploy_cdn(
        emulation,
        vns["redirector"],
        [vns["replica_far"], vns["replica_near"]],
        policy=POLICY_STATIC,
    )
    client = CdnClient(emulation, vns["client0"], vns["redirector"])
    for _ in range(3):
        client.request(10_000)
    sim.run(until=10.0)
    assert len(client.completed) == 3
    assert {replica for _l, _s, replica in client.completed} == {
        vns["replica_far"]
    }


def test_closest_policy_picks_nearby_replica():
    sim, emulation, vns = two_sided_topology()
    replicas = [vns["replica_far"], vns["replica_near"]]
    redirector, servers, agents = deploy_cdn(
        emulation, vns["redirector"], replicas, policy=POLICY_CLOSEST
    )
    client = CdnClient(emulation, vns["client0"], vns["redirector"])
    client.probe_replicas(replicas)
    sim.run(until=2.0)  # probes + reports land
    client.request(10_000)
    sim.run(until=10.0)
    assert client.completed
    assert client.completed[0][2] == vns["replica_near"]


def test_closest_beats_static_on_latency():
    results = {}
    for policy in (POLICY_STATIC, POLICY_CLOSEST):
        sim, emulation, vns = two_sided_topology()
        replicas = [vns["replica_far"], vns["replica_near"]]
        deploy_cdn(emulation, vns["redirector"], replicas, policy=policy)
        client = CdnClient(emulation, vns["client0"], vns["redirector"])
        client.probe_replicas(replicas)
        sim.run(until=2.0)
        client.request(50_000)
        sim.run(until=20.0)
        results[policy] = client.latencies[0]
    assert results[POLICY_CLOSEST] < results[POLICY_STATIC] * 0.7


def test_least_loaded_balances():
    sim, emulation, vns = two_sided_topology()
    replicas = [vns["replica_near"], vns["replica_far"]]
    redirector, servers, agents = deploy_cdn(
        emulation, vns["redirector"], replicas,
        policy=POLICY_LEAST_LOADED, ttl_s=0.5,
    )
    clients = [
        CdnClient(emulation, vns[name], vns["redirector"])
        for name in ("client0", "client1")
    ]
    # A steady request stream; load reports shift the answer between
    # replicas over time.
    for index in range(20):
        for client in clients:
            sim.at(1.0 + index * 0.6, client.request, 5_000)
    sim.run(until=30.0)
    served = {vn: server.requests_served for vn, server in zip(replicas, servers)}
    total = sum(served.values())
    assert total == 40
    # Neither replica starves.
    assert min(served.values()) >= 0.2 * total


def test_ttl_caching_limits_resolutions():
    sim, emulation, vns = two_sided_topology()
    redirector, servers, agents = deploy_cdn(
        emulation, vns["redirector"], [vns["replica_near"]],
        policy=POLICY_STATIC, ttl_s=60.0,
    )
    client = CdnClient(emulation, vns["client0"], vns["redirector"])
    for index in range(10):
        sim.at(0.5 + index * 0.2, client.request, 2_000)
    sim.run(until=20.0)
    assert len(client.completed) == 10
    assert redirector.resolutions == 1  # the cache answered the rest


def test_policy_validation():
    sim, emulation, vns = two_sided_topology()
    with pytest.raises(ValueError):
        DnsRedirector(emulation, vns["redirector"], [], policy=POLICY_STATIC)
    with pytest.raises(ValueError):
        DnsRedirector(
            emulation, vns["redirector"], [vns["replica_near"]],
            policy="coin-flip",
        )
