"""Tests for the synthetic RON matrix and the RPC layer."""

import pytest

from repro.apps import RpcNode, ron_sites, ron_topology
from repro.net import LoopbackFabric
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator


# ------------------------------------------------------------- RON data

def test_ron_shape():
    topology, sites = ron_topology(seed=0)
    assert len(sites) == 12
    assert topology.num_nodes == 24  # 12 sites + 12 gateways
    assert topology.num_links == 12 + 66  # access links + gateway mesh
    assert len(topology.clients()) == 12


def test_ron_deterministic():
    a, _ = ron_topology(seed=5)
    b, _ = ron_topology(seed=5)
    for link_id in a.links:
        assert a.links[link_id].latency_s == b.links[link_id].latency_s


def test_ron_pair_latency_structure():
    from repro.routing import CachedRouting, route_latency

    topology, sites = ron_topology(seed=0)
    routing = CachedRouting(topology, weight="latency")
    for i in range(12):
        for j in range(i + 1, 12):
            a, b = sites[i], sites[j]
            ms = route_latency(routing.route(i, j)) * 1e3
            if a.region == b.region:
                assert ms <= 40.5
            elif {a.region, b.region} == {"us-east", "us-west"}:
                assert 34 <= ms <= 51
            else:
                assert 69 <= ms <= 96


def test_ron_access_bandwidth_structure():
    topology, sites = ron_topology(seed=0)
    for index, site in enumerate(sites):
        access = topology.links_of(index)[0]
        if site.slow:
            assert access.bandwidth_bps <= 1.2e6
        else:
            assert 1.0e6 <= access.bandwidth_bps <= 3.0e6
    for link in topology.links.values():
        assert 0.0 <= link.loss_rate <= 0.02


# ------------------------------------------------------------------ RPC

def rpc_pair(loss=0.0, seed=0):
    import random

    sim = Simulator()
    fabric = LoopbackFabric(
        sim, delay_s=0.01, loss_rate=loss, rng=random.Random(seed)
    )
    emu_vn = type("FakeVN", (), {})
    # RpcNode only needs .udp_socket and .stack.sim; wrap stacks.
    class VnShim:
        def __init__(self, stack):
            self.stack = stack

        def udp_socket(self, **kwargs):
            return self.stack.udp_socket(**kwargs)

    server = RpcNode(VnShim(fabric.stack(1)))
    client = RpcNode(VnShim(fabric.stack(0)))
    return sim, client, server


def test_rpc_roundtrip():
    sim, client, server = rpc_pair()
    server.register("echo", lambda src, payload: ((payload, src), 64))
    replies = []
    client.call(1, "echo", "hello", on_reply=replies.append)
    sim.run(until=1.0)
    assert replies == [("hello", 0)]
    assert server.calls_served == 1


def test_rpc_retry_recovers_from_loss():
    sim, client, server = rpc_pair(loss=0.4, seed=3)
    server.register("echo", lambda src, payload: (payload, 64))
    replies = []
    fails = []
    for index in range(20):
        client.call(
            1,
            "echo",
            index,
            on_reply=replies.append,
            on_fail=lambda: fails.append(1),
            timeout_s=0.1,
            retries=8,
        )
    sim.run(until=30.0)
    assert len(replies) + len(fails) == 20
    assert len(replies) >= 18  # retries recover almost everything
    assert client.retries > 0


def test_rpc_failure_after_retries_exhausted():
    sim, client, server = rpc_pair()
    # No handler registered: requests are ignored, so calls time out.
    failures = []
    client.call(
        1, "missing", None, on_fail=lambda: failures.append(1),
        timeout_s=0.05, retries=2,
    )
    sim.run(until=5.0)
    assert failures == [1]
    assert client.failures == 1


def test_rpc_through_real_emulation():
    sim = Simulator()
    topology, _sites = ron_topology(seed=1)
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    server = RpcNode(emulation.vn(3))
    client = RpcNode(emulation.vn(0))
    server.register("add", lambda src, payload: (payload + 1, 64))
    replies = []
    client.call(3, "add", 41, on_reply=lambda value: replies.append((value, sim.now)))
    sim.run(until=2.0)
    assert replies[0][0] == 42
    from repro.routing import CachedRouting, route_latency

    routing = CachedRouting(topology, weight="latency")
    one_way = route_latency(routing.route(0, 3))
    assert replies[0][1] >= 2 * one_way  # a real round trip
