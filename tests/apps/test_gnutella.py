"""Tests for the gnutella-style unstructured P2P network."""

import pytest

from repro.apps import GnutellaNetwork
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import star_topology


def build_network(n=30, target_degree=3):
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(star_topology(n, bandwidth_bps=10e6, latency_s=0.005))
        .run(EmulationConfig.reference())
    )
    network = GnutellaNetwork(
        emulation, list(range(n)), target_degree=target_degree
    )
    return sim, network


def test_staged_join_builds_connected_overlay():
    sim, network = build_network(n=30)
    network.staged_join(interval_s=0.05)
    sim.run(until=30.0)
    assert network.largest_component_fraction() > 0.95
    assert network.mean_degree() >= 1.5


def test_degree_respects_max():
    sim, network = build_network(n=30)
    network.staged_join(interval_s=0.05)
    sim.run(until=30.0)
    for node in network.nodes.values():
        assert len(node.neighbors) <= network.max_degree + 1


def test_query_reaches_content():
    sim, network = build_network(n=30)
    network.staged_join(interval_s=0.05)
    sim.run(until=30.0)
    holders = network.place_content("song.mp3", copies=6)
    hits = []
    querier = min(set(network.nodes) - set(holders))
    network.nodes[querier].query(
        "song.mp3", on_hit=lambda holder, kw: hits.append(holder)
    )
    sim.run(until=60.0)
    assert hits, "flooded query found no replica"
    assert set(hits) <= set(holders)


def test_ttl_bounds_flood_scope():
    sim, network = build_network(n=30)
    network.staged_join(interval_s=0.05)
    sim.run(until=30.0)
    network.place_content("rare.bin", copies=1)
    querier = 0
    network.nodes[querier].query("rare.bin", ttl=1)
    sim.run(until=40.0)
    # TTL 1 floods only direct neighbors.
    reached = sum(
        1 for node in network.nodes.values() if node.queries_forwarded > 0
    )
    assert reached <= len(network.nodes[querier].neighbors)


def test_duplicate_suppression():
    sim, network = build_network(n=20)
    network.staged_join(interval_s=0.05)
    sim.run(until=20.0)
    network.nodes[0].query("anything", ttl=6)
    sim.run(until=40.0)
    # Each node forwards a given query at most once.
    for node in network.nodes.values():
        assert len(node.seen_queries) <= 2  # the one query (+ own issue)
