"""Tests for the ACDC-style adaptive overlay."""

import random

import pytest

from repro.apps import AcdcOverlay
from repro.core import (
    EmulationConfig,
    ExperimentPipeline,
    FaultInjector,
    LinkPerturbation,
)
from repro.engine import Simulator
from repro.topology import TransitStubSpec, transit_stub_topology


def build_overlay(members=12, delay_target=0.5, seed=2):
    spec = TransitStubSpec(
        transit_nodes_per_domain=4,
        stub_domains_per_transit_node=2,
        stub_nodes_per_domain=3,
    )
    topology = transit_stub_topology(spec, random.Random(seed))
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    member_vns = list(range(members))
    overlay = AcdcOverlay(emulation, member_vns, delay_target_s=delay_target)
    return sim, emulation, overlay


def test_initial_tree_is_connected():
    sim, emulation, overlay = build_overlay()
    for vn, member in overlay.members.items():
        if vn == overlay.root_vn:
            assert member.parent is None
        else:
            assert member.parent is not None
            # Walking parents reaches the root.
            cursor, steps = member, 0
            while cursor.parent is not None and steps < 100:
                cursor = overlay.members[cursor.parent]
                steps += 1
            assert cursor.vn_id == overlay.root_vn


def test_tree_cost_at_least_mst():
    sim, emulation, overlay = build_overlay()
    assert overlay.tree_cost() >= overlay.mst_cost() - 1e-9


def test_adaptation_reduces_cost():
    sim, emulation, overlay = build_overlay(delay_target=2.0)
    initial_ratio = overlay.tree_cost() / overlay.mst_cost()
    overlay.start()
    sim.run(until=120.0)
    overlay.stop()
    final_ratio = overlay.tree_cost() / overlay.mst_cost()
    assert final_ratio < initial_ratio
    assert final_ratio < 1.8
    switches = sum(m.parent_switches for m in overlay.members.values())
    assert switches > 0


def test_tree_stays_loop_free_under_adaptation():
    sim, emulation, overlay = build_overlay(delay_target=2.0)
    overlay.start()
    sim.run(until=60.0)
    overlay.stop()
    for vn, member in overlay.members.items():
        seen = set()
        cursor = member
        while cursor.parent is not None:
            assert cursor.vn_id not in seen, "parent cycle detected"
            seen.add(cursor.vn_id)
            cursor = overlay.members[cursor.parent]
        assert cursor.vn_id == overlay.root_vn


def test_delay_violation_triggers_reparenting():
    sim, emulation, overlay = build_overlay(delay_target=0.2)
    overlay.start()
    sim.run(until=60.0)
    baseline = overlay.actual_max_delay()

    injector = FaultInjector(emulation)
    injector.start_perturbation(
        LinkPerturbation(period_s=5.0, link_fraction=0.5, latency_scale=(4.0, 6.0)),
        start_s=60.0,
        stop_s=120.0,
    )
    sim.run(until=120.0)
    during_switches = sum(m.parent_switches for m in overlay.members.values())
    sim.run(until=200.0)
    overlay.stop()
    recovered = overlay.actual_max_delay()
    # After the perturbation ends, the overlay returns to sane delays.
    assert recovered < 4 * baseline + 0.5
    assert during_switches > 0


def test_spt_delay_is_lower_bound():
    sim, emulation, overlay = build_overlay()
    overlay.start()
    sim.run(until=60.0)
    overlay.stop()
    assert overlay.actual_max_delay() >= overlay.spt_delay() - 1e-9
