"""Tests for the netperf-style load generators."""

import pytest

from repro.apps import ComputePerByteSender, TcpStream, UdpCbrSource, UdpSink
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import chain_topology, star_topology


def test_tcp_stream_saturates_pipe():
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(chain_topology(1, hops=1, bandwidth_bps=10e6, latency_s=0.010))
        .run(EmulationConfig.reference())
    )
    stream = TcpStream(emulation, 0, 1)
    sim.run(until=2.0)
    stream.mark()
    sim.run(until=6.0)
    goodput = stream.throughput_bps()
    # 10 Mb/s wire rate minus header overhead: ~9.5 Mb/s of goodput.
    assert goodput == pytest.approx(9.5e6, rel=0.08)


def test_tcp_stream_stop_halts_transfer():
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(chain_topology(1, hops=1, bandwidth_bps=10e6, latency_s=0.010))
        .run(EmulationConfig.reference())
    )
    stream = TcpStream(emulation, 0, 1)
    sim.run(until=1.0)
    stream.stop()
    sim.run(until=2.0)
    at_stop = stream.bytes_received
    sim.run(until=4.0)
    assert stream.bytes_received <= at_stop + TcpStream.CHUNK


def test_tcp_stream_deferred_start():
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(chain_topology(1, hops=1, bandwidth_bps=10e6, latency_s=0.010))
        .run(EmulationConfig.reference())
    )
    stream = TcpStream(emulation, 0, 1, start_at=1.0)
    sim.run(until=0.9)
    assert stream.bytes_received == 0
    sim.run(until=3.0)
    assert stream.bytes_received > 0


def test_udp_cbr_rate(star_emulation):
    sim, emulation = star_emulation
    sink = UdpSink(emulation.vn(1))
    source = UdpCbrSource(
        emulation.vn(0), 1, rate_bps=1e6, packet_bytes=1000, stop_at=2.0
    )
    sim.run(until=3.0)
    # 1 Mb/s for 2 s = 250 packets of 1000 B.
    assert source.sent == pytest.approx(250, abs=2)
    assert sink.bytes_received == pytest.approx(250_000, rel=0.02)


def test_udp_cbr_validation(star_emulation):
    sim, emulation = star_emulation
    with pytest.raises(ValueError):
        UdpCbrSource(emulation.vn(0), 1, rate_bps=0)


def test_compute_sender_requires_cpu_model(star_emulation):
    sim, emulation = star_emulation
    with pytest.raises(RuntimeError):
        ComputePerByteSender(emulation.vn(0), 1, 10.0)


def test_compute_sender_rate_limited_by_cpu():
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(star_topology(2, bandwidth_bps=100e6, latency_s=0.001))
        .run(
            EmulationConfig(
                model_edge_cpu=True,
                num_hosts=2,
                binding_strategy="round_robin",
            )
        )
    )
    sink = UdpSink(emulation.vn(1))
    sender = ComputePerByteSender(emulation.vn(0), 1, instructions_per_byte=200.0)
    sim.run(until=1.0)
    sender.stop()
    # 200 i/B * 1500 B = 300k instructions = 300 us/packet (plus the
    # 12 us stack cost) -> ~3200 packets/s.
    assert 2500 < sender.sent < 3400


def test_pareto_onoff_duty_cycle(star_emulation):
    import random as _random

    from repro.apps import ParetoOnOffSource

    sim, emulation = star_emulation
    sink = UdpSink(emulation.vn(1))
    source = ParetoOnOffSource(
        emulation.vn(0),
        1,
        peak_rate_bps=2e6,
        mean_on_s=0.5,
        mean_off_s=0.5,
        rng=_random.Random(4),
        stop_at=20.0,
    )
    sim.run(until=25.0)
    # ~50% duty cycle at 2 Mb/s peak: mean rate in a broad band
    # around 1 Mb/s (Pareto tails make this noisy by design).
    mean_rate = sink.bytes_received * 8 / 20.0
    assert 0.3e6 < mean_rate < 1.8e6
    assert source.bursts > 3


def test_pareto_onoff_is_bursty(star_emulation):
    """The signature property: per-interval rates vary far more than
    a CBR source's."""
    import random as _random

    from repro.apps import ParetoOnOffSource

    sim, emulation = star_emulation
    sink = UdpSink(emulation.vn(1))
    ParetoOnOffSource(
        emulation.vn(0), 1, peak_rate_bps=2e6,
        rng=_random.Random(9), stop_at=30.0,
    )
    samples = []
    last = [0]

    def sample():
        samples.append(sink.bytes_received - last[0])
        last[0] = sink.bytes_received
        if sim.now < 30.0:
            sim.schedule(0.25, sample)

    sim.schedule(0.25, sample)
    sim.run(until=31.0)
    assert samples.count(0) > 3  # real idle periods
    mean = sum(samples) / len(samples)
    variance = sum((s - mean) ** 2 for s in samples) / len(samples)
    # On/off alternation: coefficient of variation near 1, far above
    # a CBR source's ~0.
    assert variance**0.5 > 0.5 * mean


def test_pareto_validation(star_emulation):
    from repro.apps import ParetoOnOffSource

    sim, emulation = star_emulation
    with pytest.raises(ValueError):
        ParetoOnOffSource(emulation.vn(0), 1, peak_rate_bps=0)
    with pytest.raises(ValueError):
        ParetoOnOffSource(emulation.vn(0), 1, peak_rate_bps=1e6, shape=0.9)
