"""Tests for the web server and trace-playback clients."""

import random

import pytest

from repro.analysis import synthesize_web_trace
from repro.apps import TraceClient, WebServer
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import star_topology


def build_star(n=6, bw=10e6):
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(star_topology(n, bandwidth_bps=bw, latency_s=0.005))
        .run(EmulationConfig.reference())
    )
    return sim, emulation


def test_single_request_latency():
    sim, emulation = build_star()
    server = WebServer(emulation, 0)
    client = TraceClient(emulation, 1, 0, [(0.5, 20_000)])
    sim.run(until=5.0)
    assert server.requests_served == 1
    assert len(client.completed) == 1
    latency, size = client.completed[0]
    assert size == 20_000
    # Handshake RTT + request + ~20 KB over 10 Mb/s with 10 ms RTTs.
    assert 0.03 < latency < 0.5


def test_latency_grows_with_size():
    sim, emulation = build_star()
    WebServer(emulation, 0)
    small = TraceClient(emulation, 1, 0, [(0.0, 2_000)])
    large = TraceClient(emulation, 2, 0, [(0.0, 500_000)])
    sim.run(until=10.0)
    assert small.latencies[0] < large.latencies[0]


def test_many_requests_all_complete():
    sim, emulation = build_star()
    server = WebServer(emulation, 0)
    trace = [(i * 0.05, 5_000) for i in range(40)]
    client = TraceClient(emulation, 1, 0, trace)
    sim.run(until=20.0)
    assert client.issued == 40
    assert len(client.completed) == 40
    assert client.failed == 0
    assert server.bytes_served == 200_000


def test_redirect_moves_load():
    sim, emulation = build_star()
    primary = WebServer(emulation, 0)
    replica = WebServer(emulation, 3)
    client = TraceClient(emulation, 1, 0, [(0.0, 1000), (2.0, 1000)])
    sim.at(1.0, client.redirect, 3)
    sim.run(until=10.0)
    assert primary.requests_served == 1
    assert replica.requests_served == 1


def test_contention_inflates_latency():
    """Many clients on one access pipe: the shared bottleneck grows
    client-perceived latency (the Fig. 11 mechanism)."""
    sim, emulation = build_star(n=8, bw=2e6)
    WebServer(emulation, 0)
    quiet_client = TraceClient(emulation, 1, 0, [(0.0, 30_000)])
    sim.run(until=4.0)
    quiet = quiet_client.latencies[0]

    busy_clients = [
        TraceClient(emulation, vn, 0, [(4.0 + 0.01 * vn, 200_000)])
        for vn in range(2, 8)
    ]
    probe = TraceClient(emulation, 1, 0, [(4.2, 30_000)])
    sim.run(until=60.0)
    assert probe.latencies, "probe request never completed"
    assert probe.latencies[0] > 2 * quiet


def test_trace_playback_with_synthetic_trace():
    sim, emulation = build_star()
    server = WebServer(emulation, 0)
    trace = synthesize_web_trace(
        random.Random(1), duration_s=5.0, rate_low=10, rate_high=20,
        size_cap_bytes=50_000,
    )
    clients = [
        TraceClient(emulation, vn, 0, trace.slice_for_client(vn - 1, 3))
        for vn in range(1, 4)
    ]
    sim.run(until=30.0)
    completed = sum(len(c.completed) for c in clients)
    assert completed == trace.count
    assert server.requests_served == trace.count
