"""Smoke tests: every shipped example runs to completion.

These execute the example scripts in-process (fresh module each time)
so a refactor that breaks an example fails the suite, not a user.
"""

import pathlib
import runpy
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"

#: The longer studies run minutes; the smoke set stays under ~30 s.
FAST_EXAMPLES = [
    "quickstart.py",
    "cfs_download.py",
    "distillation_tradeoff.py",
    "wireless_adhoc.py",
]

SLOW_EXAMPLES = [
    "replicated_web.py",
    "adaptive_overlay.py",
    "cdn_routing.py",
]


def run_example(name, capsys):
    runpy.run_path(str(EXAMPLES / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys):
    output = run_example(name, capsys)
    assert output.strip(), f"{name} produced no output"


def test_every_example_is_listed():
    on_disk = {path.name for path in EXAMPLES.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)


def test_quickstart_reports_accuracy(capsys):
    output = run_example("quickstart.py", capsys)
    assert "accuracy report" in output
    assert "bottleneck: 2 Mb/s" in output


def test_cfs_example_prefetch_scales(capsys):
    output = run_example("cfs_download.py", capsys)
    assert "prefetch" in output
    assert "KB/s" in output
