"""Tests for selective acknowledgments (RFC 2018-style)."""

import random

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.engine import Simulator
from repro.net import LoopbackFabric
from repro.net.packet import PROTO_TCP
from repro.net.tcp import TcpParams


def make_pair(sim, fabric, sack=True, **connect_kwargs):
    params = TcpParams.modern() if sack else TcpParams()
    accepted = []
    server = fabric.stack(1, tcp_params=params)
    server.tcp_listen(80, accepted.append)
    client_stack = fabric.stack(0, tcp_params=params)
    client = client_stack.tcp_connect(1, 80, **connect_kwargs)
    return client, accepted


def test_modern_preset_enables_sack():
    assert TcpParams.modern().sack
    assert not TcpParams().sack
    assert not TcpParams.modern(sack=False).sack


def test_receiver_advertises_sack_blocks():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.005)
    state = {"count": 0}
    saw_blocks = []

    def drop_filter(packet):
        segment = packet.segment
        if packet.proto == PROTO_TCP:
            if segment.payload_len > 0:
                state["count"] += 1
                return state["count"] == 5  # one mid-window hole
            if segment.sack_blocks:
                saw_blocks.append(list(segment.sack_blocks))
        return False

    fabric.drop_filter = drop_filter
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(100_000)
    )
    sim.run(until=5.0)
    assert accepted[0].bytes_received == 100_000
    assert saw_blocks, "no SACK blocks ever advertised"
    # Blocks describe ranges above the cumulative ACK.
    for blocks in saw_blocks:
        for start, end in blocks:
            assert end > start


def test_multi_loss_window_recovers_without_timeout():
    """Several losses in one flight: SACK repairs them all in fast
    recovery where plain NewReno needs partial-ack round trips (and
    often an RTO)."""
    outcomes = {}
    for sack in (False, True):
        sim = Simulator()
        fabric = LoopbackFabric(sim, delay_s=0.02)
        state = {"count": 0}
        to_drop = {12, 14, 16, 18}

        def drop_filter(packet):
            if packet.proto == PROTO_TCP and packet.segment.payload_len > 0:
                state["count"] += 1
                return state["count"] in to_drop
            return False

        fabric.drop_filter = drop_filter
        done = []
        client, accepted = make_pair(
            sim,
            fabric,
            sack=sack,
            on_established=lambda c: c.send(300_000, message="eof"),
        )
        sim.run(until=60.0)
        assert accepted[0].bytes_received == 300_000
        outcomes[sack] = (client.timeouts, sim.now)
    # SACK completes the multi-loss recovery without an RTO.
    assert outcomes[True][0] == 0


def test_sack_avoids_retransmitting_received_data():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.02)
    state = {"count": 0}

    def drop_filter(packet):
        # Drop one segment late in the transfer, when the flight is
        # wide enough for three duplicate ACKs to arrive.
        if packet.proto == PROTO_TCP and packet.segment.payload_len > 0:
            state["count"] += 1
            return state["count"] == 40
        return False

    fabric.drop_filter = drop_filter
    client, accepted = make_pair(
        sim, fabric, sack=True, on_established=lambda c: c.send(200_000)
    )
    sim.run(until=30.0)
    assert accepted[0].bytes_received == 200_000
    # Exactly one loss: a SACK sender repairs it with very few
    # retransmitted segments (NewReno can end up resending more).
    assert client.timeouts == 0
    assert client.segments_retransmitted <= 3


def test_sack_interops_with_non_sack_peer():
    """A SACK sender talking to a plain receiver (no blocks coming
    back) degrades gracefully to NewReno behavior."""
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.01)
    accepted = []
    fabric.stack(1, tcp_params=TcpParams()).tcp_listen(80, accepted.append)
    state = {"count": 0}

    def drop_filter(packet):
        if packet.proto == PROTO_TCP and packet.segment.payload_len > 0:
            state["count"] += 1
            return state["count"] == 8
        return False

    fabric.drop_filter = drop_filter
    client = fabric.stack(0, tcp_params=TcpParams.modern()).tcp_connect(
        1, 80, on_established=lambda c: c.send(150_000)
    )
    sim.run(until=30.0)
    assert accepted[0].bytes_received == 150_000


@settings(max_examples=12, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    loss=st.floats(0.0, 0.1),
    size=st.integers(5_000, 120_000),
)
def test_property_sack_integrity_under_loss(seed, loss, size):
    sim = Simulator()
    fabric = LoopbackFabric(
        sim, delay_s=0.004, loss_rate=loss, rng=random.Random(seed)
    )
    client, accepted = make_pair(
        sim, fabric, sack=True, on_established=lambda c: c.send(size)
    )
    sim.run(until=300.0)
    assert accepted, "handshake never completed"
    assert accepted[0].bytes_received == size
    assert client.bytes_acked == size


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 5000))
@example(seed=578)
@example(seed=3679)
def test_property_sack_no_slower_than_reno_under_burst_loss(seed):
    """With bursty loss, SACK transfers finish no later than plain
    Reno/NewReno ones (modulo a tolerance).

    The tolerance must absorb unlucky loss patterns: a burst that takes
    out a SACK run's retransmissions forces an RTO either way, and the
    comparison is between two different random drop sequences, so a
    per-seed inversion of up to ~1s is expected noise (worst observed
    over a 300-seed sweep: seeds 578 and 3679, pinned above)."""
    finish = {}
    for sack in (False, True):
        sim = Simulator()
        fabric = LoopbackFabric(
            sim, delay_s=0.015, loss_rate=0.04, rng=random.Random(seed)
        )
        done = []
        client, accepted = make_pair(
            sim,
            fabric,
            sack=sack,
            on_established=lambda c: c.send(150_000, message="eof"),
        )
        sim.run(until=0.1)
        if accepted:
            accepted[0].on_message = lambda c, m: done.append(sim.now)
        sim.run(until=600.0)
        finish[sack] = done[0] if done else 600.0
    assert finish[True] <= finish[False] * 1.25 + 1.5
