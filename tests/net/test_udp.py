"""Tests for UDP sockets over the loopback fabric."""

import random

import pytest

from repro.engine import Simulator
from repro.net import LoopbackFabric, SocketError


def test_udp_delivery_and_payload():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.005)
    received = []

    server = fabric.stack(1)
    server.udp_socket(
        port=5000,
        on_receive=lambda src, sport, size, payload: received.append(
            (src, sport, size, payload, sim.now)
        ),
    )
    client = fabric.stack(0)
    socket = client.udp_socket()
    socket.send_to(1, 5000, 100, payload={"op": "ping"})
    sim.run()
    assert len(received) == 1
    src, sport, size, payload, when = received[0]
    assert src == 0
    assert sport == socket.port
    assert size == 100
    assert payload == {"op": "ping"}
    assert when == pytest.approx(0.005)


def test_udp_to_unbound_port_dropped():
    sim = Simulator()
    fabric = LoopbackFabric(sim)
    fabric.stack(1)
    client = fabric.stack(0)
    client.udp_socket().send_to(1, 7777, 10)
    sim.run()
    assert fabric.delivered == 1  # delivered to stack, no socket -> ignored


def test_udp_to_unknown_vn_dropped():
    sim = Simulator()
    fabric = LoopbackFabric(sim)
    client = fabric.stack(0)
    client.udp_socket().send_to(99, 7777, 10)
    sim.run()
    assert fabric.dropped == 1


def test_udp_random_loss():
    sim = Simulator()
    fabric = LoopbackFabric(sim, loss_rate=0.5, rng=random.Random(1))
    received = []
    fabric.stack(1).udp_socket(port=1, on_receive=lambda *a: received.append(a))
    sender = fabric.stack(0).udp_socket()
    for _ in range(200):
        sender.send_to(1, 1, 50)
    sim.run()
    assert 60 < len(received) < 140


def test_duplicate_port_rejected():
    sim = Simulator()
    fabric = LoopbackFabric(sim)
    stack = fabric.stack(0)
    stack.udp_socket(port=5)
    with pytest.raises(SocketError):
        stack.udp_socket(port=5)


def test_closed_socket_rejects_send_and_frees_port():
    sim = Simulator()
    fabric = LoopbackFabric(sim)
    stack = fabric.stack(0)
    fabric.stack(1)
    socket = stack.udp_socket(port=5)
    socket.close()
    with pytest.raises(SocketError):
        socket.send_to(1, 1, 10)
    stack.udp_socket(port=5)  # port reusable


def test_ephemeral_ports_unique():
    sim = Simulator()
    fabric = LoopbackFabric(sim)
    stack = fabric.stack(0)
    ports = {stack.udp_socket().port for _ in range(50)}
    assert len(ports) == 50


def test_socket_counters():
    sim = Simulator()
    fabric = LoopbackFabric(sim)
    receiver = fabric.stack(1).udp_socket(port=9)
    sender = fabric.stack(0).udp_socket()
    for _ in range(3):
        sender.send_to(1, 9, 500)
    sim.run()
    assert sender.datagrams_sent == 3
    assert receiver.datagrams_received == 3
    assert receiver.bytes_received == 1500
