"""Tests for the TCP implementation over the loopback fabric."""

import random

import pytest
from hypothesis import example, given, settings, strategies as st

from repro.engine import Simulator
from repro.net import LoopbackFabric
from repro.net.packet import PROTO_TCP
from repro.net.tcp import ESTABLISHED


def make_pair(sim, fabric, server_vn=1, client_vn=0, port=80, **connect_kwargs):
    """Server accepting on ``port``; returns (client_conn, accepted_list)."""
    accepted = []

    def on_connection(conn):
        accepted.append(conn)

    fabric.stack(server_vn).tcp_listen(port, on_connection)
    client = fabric.stack(client_vn).tcp_connect(server_vn, port, **connect_kwargs)
    return client, accepted


def test_handshake():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.01)
    established = []
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: established.append(sim.now)
    )
    sim.run(until=1.0)
    assert client.state == ESTABLISHED
    assert len(accepted) == 1
    assert accepted[0].state == ESTABLISHED
    # One RTT for SYN / SYN+ACK.
    assert established[0] == pytest.approx(0.02)


def test_bulk_transfer_integrity():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.005)
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(100_000)
    )
    sim.run(until=5.0)
    server = accepted[0]
    assert server.bytes_received == 100_000
    assert client.bytes_acked == 100_000


def test_throughput_matches_bottleneck():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.005, bandwidth_bps=1e6)
    done = []

    def on_established(conn):
        conn.send(125_000)  # 1 Mb/s -> ~1 s of data

    client, accepted = make_pair(sim, fabric, on_established=on_established)
    accepted_conn = {}

    sim.run(until=30.0)
    server = accepted[0]
    assert server.bytes_received == 125_000
    # Ideal serialization time is 1.0 s; allow slow-start and header
    # overhead but it must be in the right regime.
    assert client.bytes_acked == 125_000


def test_transfer_completion_time_reasonable():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.01, bandwidth_bps=8e6)
    finished = []

    def on_message(conn, message):
        finished.append(sim.now)

    client, accepted = make_pair(
        sim,
        fabric,
        on_established=lambda c: c.send(1_000_000, message="done"),
    )
    # Install on the server side once accepted.
    sim.run(until=0.05)
    accepted[0].on_message = on_message
    sim.run(until=30.0)
    assert finished, "transfer did not complete"
    # Serialization alone is 1.03 s; slow start adds a few RTTs.
    assert 1.0 < finished[0] < 3.0


def test_message_framing_in_order():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.002)
    messages = []

    def on_connection(conn):
        conn.on_message = lambda c, m: messages.append(m)

    fabric.stack(1).tcp_listen(80, on_connection)

    def on_established(conn):
        for index in range(5):
            conn.send(1000 + index, message=f"msg-{index}")

    fabric.stack(0).tcp_connect(1, 80, on_established=on_established)
    sim.run(until=2.0)
    assert messages == [f"msg-{i}" for i in range(5)]


def test_bidirectional_transfer():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.002)

    def on_connection(conn):
        conn.on_message = lambda c, m: c.send(5000, message="response")

    fabric.stack(1).tcp_listen(80, on_connection)
    responses = []
    client = fabric.stack(0).tcp_connect(
        1,
        80,
        on_established=lambda c: c.send(2000, message="request"),
        on_message=lambda c, m: responses.append((m, sim.now)),
    )
    sim.run(until=2.0)
    assert responses and responses[0][0] == "response"
    assert client.bytes_received == 5000


def test_fast_retransmit_on_single_drop():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.005)
    state = {"count": 0}

    def drop_filter(packet):
        if packet.proto == PROTO_TCP and packet.segment.payload_len > 0:
            state["count"] += 1
            return state["count"] == 8  # drop the 8th data segment
        return False

    fabric.drop_filter = drop_filter
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(100_000)
    )
    sim.run(until=10.0)
    assert accepted[0].bytes_received == 100_000
    assert client.fast_retransmits >= 1
    assert client.timeouts == 0


def test_timeout_on_total_blackout():
    sim = Simulator()
    # Cap the path so the transfer is still in flight at blackout.
    fabric = LoopbackFabric(sim, delay_s=0.005, bandwidth_bps=4e6)
    blackout = {"active": False}
    fabric.drop_filter = lambda packet: blackout["active"]

    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(500_000)
    )
    sim.schedule(0.3, lambda: blackout.update(active=True))
    sim.schedule(1.0, lambda: blackout.update(active=False))
    sim.run(until=30.0)
    assert client.timeouts >= 1
    assert accepted[0].bytes_received == 500_000


def test_random_loss_integrity():
    sim = Simulator()
    fabric = LoopbackFabric(
        sim, delay_s=0.01, loss_rate=0.03, rng=random.Random(7)
    )
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(200_000)
    )
    sim.run(until=120.0)
    assert accepted[0].bytes_received == 200_000
    assert client.bytes_acked == 200_000


def test_syn_retransmission():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.005)
    drops = {"n": 0}

    def drop_filter(packet):
        # Drop the first SYN only.
        if packet.proto == PROTO_TCP and packet.segment.flags & 0x1:
            drops["n"] += 1
            return drops["n"] == 1
        return False

    fabric.drop_filter = drop_filter
    client, accepted = make_pair(sim, fabric)
    sim.run(until=10.0)
    assert client.state == ESTABLISHED
    # Initial RTO is 1 s, so establishment happens just after t=1.
    assert client.established_at == pytest.approx(1.01, abs=0.05)


def test_close_handshake_both_sides():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.002)
    closed = []

    def on_connection(conn):
        conn.on_close = lambda c: (closed.append("server-eof"), c.close())

    fabric.stack(1).tcp_listen(80, on_connection)
    client = fabric.stack(0).tcp_connect(
        1,
        80,
        on_established=lambda c: (c.send(1000), c.close()),
        on_close=lambda c: closed.append("client-eof"),
    )
    sim.run(until=5.0)
    assert "server-eof" in closed
    assert client.state == "closed"


def test_cwnd_grows_in_slow_start():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.02)
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(500_000)
    )
    initial = client.cwnd
    sim.run(until=0.5)
    assert client.cwnd > initial * 2


def test_delayed_ack_reduces_ack_count():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.005)
    acks = {"n": 0}

    def drop_filter(packet):
        segment = packet.segment
        if (
            packet.proto == PROTO_TCP
            and segment.payload_len == 0
            and segment.flags == 0x2
            and packet.src == 1
        ):
            acks["n"] += 1
        return False

    fabric.drop_filter = drop_filter
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(146_000)  # 100 MSS
    )
    sim.run(until=10.0)
    assert accepted[0].bytes_received == 146_000
    # Delayed ACKs: roughly one ACK per two segments, not per segment.
    assert acks["n"] < 80


def test_send_after_close_rejected():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.002)
    client, _ = make_pair(sim, fabric)
    sim.run(until=0.1)
    client.close()
    with pytest.raises(RuntimeError):
        client.send(100)


def test_invalid_send_size():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.002)
    client, _ = make_pair(sim, fabric)
    with pytest.raises(ValueError):
        client.send(0)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    loss=st.floats(0.0, 0.08),
    size=st.integers(1_000, 80_000),
)
def test_property_integrity_under_loss(seed, loss, size):
    """Whatever the loss pattern, TCP delivers exactly the bytes sent."""
    sim = Simulator()
    fabric = LoopbackFabric(
        sim, delay_s=0.004, loss_rate=loss, rng=random.Random(seed)
    )
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(size)
    )
    sim.run(until=300.0)
    assert accepted, "handshake never completed"
    assert accepted[0].bytes_received == size
    assert client.bytes_acked == size


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    loss=st.floats(0.0, 0.06),
    sizes=st.lists(st.integers(1, 40_000), min_size=1, max_size=25),
)
# A lost ACK made the sender retransmit an already-delivered write;
# the duplicate segment used to resurrect its framing mark and the
# receiver delivered message 0 twice.
@example(seed=5154, loss=0.03125, sizes=[1, 2920])
def test_property_message_framing_exactly_once_in_order(seed, loss, sizes):
    """Framed application writes arrive exactly once, in order,
    whatever the loss pattern does to the segments underneath."""
    sim = Simulator()
    fabric = LoopbackFabric(
        sim, delay_s=0.004, loss_rate=loss, rng=random.Random(seed)
    )
    received = []

    def on_connection(conn):
        conn.on_message = lambda c, m: received.append(m)

    fabric.stack(1).tcp_listen(80, on_connection)

    def send_all(conn):
        for index, size in enumerate(sizes):
            conn.send(size, message=index)

    fabric.stack(0).tcp_connect(1, 80, on_established=send_all)
    sim.run(until=400.0)
    assert received == list(range(len(sizes)))
