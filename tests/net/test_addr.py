"""Tests for VN addressing."""

import pytest
from hypothesis import given, strategies as st

from repro.net import AddressError, parse_vn_ip, vn_ip


def test_first_vn():
    assert vn_ip(0) == "10.0.0.1"


def test_carries_octets():
    assert vn_ip(255) == "10.0.1.0"
    assert vn_ip(65535) == "10.1.0.0"


def test_out_of_range():
    with pytest.raises(AddressError):
        vn_ip(-1)
    with pytest.raises(AddressError):
        vn_ip(2**24)


def test_parse_rejects_non_ten_space():
    with pytest.raises(AddressError):
        parse_vn_ip("192.168.0.1")


def test_parse_rejects_malformed():
    for bad in ("10.0.0", "10.0.0.0.1", "10.a.b.c", "10.0.0.0", "10.0.0.999"):
        with pytest.raises(AddressError):
            parse_vn_ip(bad)


@given(st.integers(0, 2**24 - 2))
def test_roundtrip(vn):
    assert parse_vn_ip(vn_ip(vn)) == vn
