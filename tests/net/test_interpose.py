"""Tests for the library-interposition analog."""

import pytest

from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.net import AddressError
from repro.net.interpose import NameService, PerSocketVnMapper, interpose
from repro.topology import star_topology


@pytest.fixture
def emulation():
    sim = Simulator()
    emu = (
        ExperimentPipeline(sim)
        .create(star_topology(6, bandwidth_bps=10e6, latency_s=0.002))
        .run(EmulationConfig.reference())
    )
    return sim, emu


def test_name_service_resolution():
    names = NameService()
    names.register(0, "alpha")
    names.register(3, "delta")
    assert names.gethostbyname("alpha") == "10.0.0.1"
    assert names.gethostbyname("delta") == "10.0.0.4"
    assert names.resolve_vn("alpha") == 0
    assert names.resolve_vn("10.0.0.4") == 3
    assert names.gethostbyaddr("10.0.0.1") == "alpha"


def test_name_service_conflicts_and_misses():
    names = NameService()
    names.register(0, "alpha")
    with pytest.raises(AddressError):
        names.register(1, "alpha")
    with pytest.raises(AddressError):
        names.gethostbyname("unknown-host")
    with pytest.raises(AddressError):
        names.gethostbyaddr("10.0.0.9")
    names.register(0, "alpha")  # same mapping is idempotent


def test_dotted_addresses_resolve_to_themselves():
    names = NameService()
    assert names.gethostbyname("10.0.0.5") == "10.0.0.5"


def test_environment_identity(emulation):
    sim, emu = emulation
    names, envs = interpose(emu, hostnames={0: "client", 5: "server"})
    assert envs[0].ip == "10.0.0.1"
    assert envs[0].gethostname() == "client"
    assert envs[1].gethostname() == envs[1].ip  # unnamed VN


def test_connect_by_hostname(emulation):
    sim, emu = emulation
    names, envs = interpose(emu, hostnames={5: "server"})
    received = []
    envs[5].tcp_listen(80, lambda conn: setattr(
        conn, "on_message", lambda c, m: received.append(m)
    ))
    envs[0].tcp_connect(
        "server", 80, on_established=lambda c: c.send(100, message="hello")
    )
    sim.run(until=2.0)
    assert received == ["hello"]


def test_udp_sendto_by_name(emulation):
    sim, emu = emulation
    names, envs = interpose(emu, hostnames={2: "sink"})
    got = []
    envs[2].udp_socket(port=9, on_receive=lambda *a: got.append(a))
    socket = envs[0].udp_socket()
    envs[0].sendto(socket, "sink", 9, 64)
    sim.run(until=1.0)
    assert len(got) == 1


def test_per_socket_vn_mapper_round_robins(emulation):
    sim, emu = emulation
    names, _envs = interpose(emu)
    mapper = PerSocketVnMapper(emu, [0, 1, 2], names)
    sockets = [mapper.udp_socket() for _ in range(6)]
    owners = [socket.stack.vn_id for socket in sockets]
    assert owners == [0, 1, 2, 0, 1, 2]
    assert mapper.sockets_opened == 6


def test_per_socket_mapper_tcp(emulation):
    sim, emu = emulation
    names, _envs = interpose(emu, hostnames={5: "server"})
    mapper = PerSocketVnMapper(emu, [0, 1], names)
    seen_sources = set()
    emu.vn(5).tcp_listen(80, lambda conn: seen_sources.add(conn.remote_vn))
    for _ in range(4):
        mapper.tcp_connect("server", 80)
    sim.run(until=2.0)
    assert seen_sources == {0, 1}


def test_mapper_requires_vns(emulation):
    sim, emu = emulation
    with pytest.raises(ValueError):
        PerSocketVnMapper(emu, [], NameService())
