"""Tests for connection tracing and packet reordering resilience."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.engine import Simulator
from repro.net import LoopbackFabric
from repro.net.conntrace import ConnectionTracer


def make_pair(sim, fabric, **connect_kwargs):
    accepted = []
    fabric.stack(1).tcp_listen(80, accepted.append)
    client = fabric.stack(0).tcp_connect(1, 80, **connect_kwargs)
    return client, accepted


# ------------------------------------------------------------- reordering

def test_jitter_reorders_but_preserves_integrity():
    sim = Simulator()
    fabric = LoopbackFabric(
        sim, delay_s=0.005, jitter_s=0.004, rng=random.Random(3)
    )
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(300_000)
    )
    sim.run(until=30.0)
    assert accepted[0].bytes_received == 300_000
    assert client.bytes_acked == 300_000


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 5000),
    jitter=st.floats(0.0, 0.01),
    loss=st.floats(0.0, 0.04),
)
def test_property_integrity_under_reordering_and_loss(seed, jitter, loss):
    """Reordering plus loss never corrupts or duplicates the stream."""
    sim = Simulator()
    fabric = LoopbackFabric(
        sim, delay_s=0.004, jitter_s=jitter, loss_rate=loss,
        rng=random.Random(seed),
    )
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(60_000)
    )
    sim.run(until=300.0)
    assert accepted, "handshake never completed"
    assert accepted[0].bytes_received == 60_000
    assert client.bytes_acked == 60_000


# ---------------------------------------------------------------- tracer

def test_tracer_samples_and_summary():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.01, bandwidth_bps=4e6)
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(500_000)
    )
    tracer = ConnectionTracer(client, period_s=0.05)
    sim.run(until=5.0)
    tracer.stop()
    assert len(tracer.samples) > 20
    assert tracer.max_cwnd() > client.params.mss * 2
    assert "max_cwnd" in tracer.summary()
    rtts = tracer.rtt_series()
    assert rtts
    assert all(rtt > 0.019 for _t, rtt in rtts)  # at least 2x one-way


def test_tracer_sees_slow_start_growth():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.02)
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(2_000_000)
    )
    tracer = ConnectionTracer(client, period_s=0.02)
    sim.run(until=1.0)
    cwnds = [cwnd for _t, cwnd in tracer.cwnd_series()]
    assert cwnds[-1] > cwnds[0] * 4


def test_tracer_captures_loss_recovery():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.02, bandwidth_bps=8e6)
    from repro.net.packet import PROTO_TCP

    state = {"count": 0}

    def drop_filter(packet):
        if packet.proto == PROTO_TCP and packet.segment.payload_len > 0:
            state["count"] += 1
            return state["count"] in (60, 61)
        return False

    fabric.drop_filter = drop_filter
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(1_000_000)
    )
    tracer = ConnectionTracer(client, period_s=0.005)
    sim.run(until=30.0)
    assert accepted[0].bytes_received == 1_000_000
    # The trace shows the cwnd cut and the recovery period.
    cwnds = [cwnd for _t, cwnd in tracer.cwnd_series()]
    assert min(cwnds[5:]) < max(cwnds) / 2
    assert tracer.samples[-1].retransmitted >= 1


def test_tracer_goodput_series():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.005, bandwidth_bps=2e6)
    client, accepted = make_pair(
        sim, fabric, on_established=lambda c: c.send(2_000_000)
    )
    tracer = ConnectionTracer(client, period_s=0.1)
    sim.run(until=4.0)
    series = tracer.goodput_series()
    steady = [rate for _t, rate in series[3:]]
    assert steady
    # ~2 Mb/s bottleneck minus headers: ~240 KB/s.
    assert sum(steady) / len(steady) == pytest.approx(240_000, rel=0.15)


def test_tracer_stops_at_close():
    sim = Simulator()
    fabric = LoopbackFabric(sim, delay_s=0.002)

    def on_connection(conn):
        # Close our direction as soon as the peer closes theirs.
        conn.on_close = lambda c: c.close()

    fabric.stack(1).tcp_listen(80, on_connection)
    client = fabric.stack(0).tcp_connect(
        1, 80, on_established=lambda c: (c.send(1_000), c.close())
    )
    tracer = ConnectionTracer(client, period_s=0.01)
    sim.run(until=10.0)
    assert client.state == "closed"
    assert not tracer._running  # self-stopped at close
    assert tracer.samples


def test_tracer_validation():
    sim = Simulator()
    fabric = LoopbackFabric(sim)
    client, _ = make_pair(sim, fabric)
    with pytest.raises(ValueError):
        ConnectionTracer(client, period_s=0.0)
