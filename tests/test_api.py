"""The Scenario facade: parity with hand-wired pipelines, validation."""

import pytest

from repro import MetricsRegistry, RunReport, Scenario
from repro.apps.netperf import TcpStream
from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import dumbbell_topology, ring_topology, save_gml


def _traffic(emulation):
    return [TcpStream(emulation, 0, 3), TcpStream(emulation, 1, 4)]


def test_scenario_matches_hand_wired_emulation():
    # Hand-wired: the documented low-level path.
    sim = Simulator()
    hand = (
        ExperimentPipeline(sim, seed=3)
        .create(dumbbell_topology(clients_per_side=3))
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(2)
        .bind(2)
        .run(EmulationConfig())
    )
    _traffic(hand)
    sim.run(until=2.0)

    # Facade, same knobs and seed.
    scenario = (
        Scenario.from_topology(dumbbell_topology(clients_per_side=3))
        .distill("hop-by-hop")
        .assign(cores=2)
        .bind(hosts=2)
        .seed(3)
        .traffic(_traffic)
    )
    report = scenario.run(until=2.0)
    facade = scenario.emulation

    assert facade.monitor.packets_entered == hand.monitor.packets_entered
    assert facade.monitor.packets_delivered == hand.monitor.packets_delivered
    assert facade.virtual_drops() == hand.virtual_drops()
    assert sum(p.arrivals for p in facade.pipes.values()) == sum(
        p.arrivals for p in hand.pipes.values()
    )
    assert report.metric("accuracy.packets_delivered") == (
        hand.monitor.packets_delivered
    )
    assert report.seed == 3
    assert report.virtual_time_s == pytest.approx(2.0)


def test_scenario_from_gml(tmp_path):
    path = tmp_path / "ring.gml"
    save_gml(ring_topology(num_routers=4, vns_per_router=1), str(path))
    report = (
        Scenario.from_gml(str(path))
        .netperf(flows=2)
        .run(until=1.0)
    )
    assert isinstance(report, RunReport)
    assert report.metric("accuracy.packets_delivered") > 0
    assert report.topology["nodes"] == 8


def test_scenario_distill_mode_names():
    scenario = Scenario.from_topology(ring_topology(4, 1))
    scenario.distill("last-mile")
    assert scenario._mode is DistillationMode.WALK_IN
    with pytest.raises(ValueError, match="unknown distillation mode"):
        scenario.distill("frobnicate")


def test_scenario_config_rejects_unknown_knobs():
    scenario = Scenario.from_topology(ring_topology(4, 1))
    with pytest.raises(ValueError, match="tick_z"):
        scenario.config(tick_z=1e-4)
    # The error names the valid knobs.
    with pytest.raises(ValueError, match="tick_s"):
        scenario.config(nope=1)


def test_scenario_reference_mode_is_exact():
    report = (
        Scenario.from_topology(dumbbell_topology(clients_per_side=2))
        .config(reference=True)
        .traffic(lambda e: [TcpStream(e, 0, 2)])
        .run(until=1.0)
    )
    assert report.config["model_physical"] is False
    assert report.metric("accuracy.max_error_s") == pytest.approx(0.0, abs=1e-12)


def test_scenario_observe_false_uses_null_registry():
    scenario = (
        Scenario.from_topology(dumbbell_topology(clients_per_side=2))
        .observe(False)
        .traffic(lambda e: [TcpStream(e, 0, 2)])
    )
    report = scenario.run(until=1.0)
    emulation = scenario.emulation
    assert not emulation.obs.enabled
    assert all(p._timer is None for p in emulation.pipes.values())
    # Pull-collected metrics are still in the report.
    assert report.metric("pipe.arrivals") > 0
    assert report.metric("pipe.enqueue_s") is None


def test_scenario_frozen_after_build():
    scenario = Scenario.from_topology(dumbbell_topology(clients_per_side=2))
    scenario.build()
    with pytest.raises(RuntimeError, match="frozen"):
        scenario.assign(cores=2)
    with pytest.raises(RuntimeError, match="frozen"):
        scenario.config(seed=9)


def test_scenario_run_validates_until():
    scenario = Scenario.from_topology(ring_topology(4, 1))
    with pytest.raises(ValueError):
        scenario.run(until=0)


def test_scenario_rejects_bad_stage_arguments():
    scenario = Scenario.from_topology(ring_topology(4, 1))
    with pytest.raises(ValueError):
        scenario.assign(cores=0)
    with pytest.raises(ValueError):
        scenario.bind(hosts=0)


def test_scenario_phase_timings_recorded():
    scenario = (
        Scenario.from_topology(dumbbell_topology(clients_per_side=2))
        .traffic(lambda e: [TcpStream(e, 0, 2)])
    )
    report = scenario.run(until=1.0)
    assert report.metric("phase.build_s")["count"] == 1
    assert report.metric("phase.run_s")["count"] == 1
    assert report.metric("distill.pipes") > 0


def test_scenario_accepts_external_registry():
    registry = MetricsRegistry()
    (
        Scenario.from_topology(dumbbell_topology(clients_per_side=2))
        .observe(registry=registry)
        .traffic(lambda e: [TcpStream(e, 0, 2)])
        .run(until=1.0)
    )
    assert registry.snapshot()["pipe.enqueue_s"]["count"] > 0


def _rich_scenario():
    """A scenario with a non-default value in every ScenarioSpec field."""
    import random

    from repro.core.assign import greedy_k_clusters
    from repro.core.bind import bind_vns
    from repro.faults import FaultPlan, LinkDown

    topology = dumbbell_topology(clients_per_side=3)
    return (
        Scenario.from_topology(topology, name="rich")
        .distill("last-mile", walk_in=2, walk_out=1)
        .assign(assignment=greedy_k_clusters(topology, 2, random.Random(0)))
        .bind(hosts=2, strategy="round_robin",
              binding=bind_vns(topology, 2, 2, strategy="round_robin"))
        .config(tick_s=0.002, reference=True)
        .seed(11)
        .netperf(flows=3, seed=4)
        .inject_fault(seconds=0.02)
        .workload("udp-cbr", flows=2)
        .faults(FaultPlan.of(LinkDown(0.01, 0)))
    )


def test_spec_round_trip_preserves_every_field():
    """Drift guard: every public ScenarioSpec knob must both differ
    from the default here and survive to_spec -> from_spec -> to_spec.
    Adding a spec field without wiring it through fails this test."""
    import dataclasses

    from repro.api import ScenarioSpec

    baseline = Scenario.from_topology(
        dumbbell_topology(clients_per_side=2)
    ).to_spec()
    spec = _rich_scenario().to_spec()
    for fld in dataclasses.fields(ScenarioSpec):
        assert getattr(spec, fld.name) != getattr(baseline, fld.name), (
            f"ScenarioSpec.{fld.name} not exercised by _rich_scenario(); "
            "extend it so round-trip coverage stays complete"
        )
    assert Scenario.from_spec(spec).to_spec() == spec


def test_with_overrides_resolves_each_knob_family():
    spec = _rich_scenario().to_spec()
    derived = spec.with_overrides(
        seed=21,              # spec passthrough
        mode="hop-by-hop",    # distillation mode by name
        cores=3,              # drops the stale assignment
        hosts=3,              # drops the stale binding
        tick_s=0.01,          # EmulationConfig knob
        flows=5,              # rewrites netperf tuples + traffic entries
    )
    assert derived.seed == 21
    assert derived.mode is DistillationMode.HOP_BY_HOP
    assert derived.cores == 3 and derived.assignment is None
    assert derived.hosts == 3 and derived.binding is None
    assert derived.knobs["tick_s"] == 0.01
    assert derived.netperf == ((5, 4),)
    assert dict(derived.traffic[0][1])["flows"] == 5
    # The source spec is untouched (frozen derivation, not mutation).
    assert spec.seed == 11 and spec.assignment is not None


def test_with_overrides_rejects_unknown_knobs():
    spec = Scenario.from_topology(
        dumbbell_topology(clients_per_side=2)
    ).to_spec()
    with pytest.raises(ValueError, match="bandwidthz"):
        spec.with_overrides(bandwidthz=10)


def test_variants_expand_in_insertion_order_last_axis_fastest():
    scenario = (
        Scenario.from_topology(dumbbell_topology(clients_per_side=2))
        .netperf(flows=2)
    )
    specs = scenario.variants(seed=[1, 2], flows=[2, 4])
    assert [(s.seed, s.netperf[0][0]) for s in specs] == [
        (1, 2), (1, 4), (2, 2), (2, 4),
    ]


def test_variants_reject_unknown_axis():
    scenario = Scenario.from_topology(dumbbell_topology(clients_per_side=2))
    with pytest.raises(ValueError, match="warpdrive"):
        scenario.variants(warpdrive=[1, 2])
