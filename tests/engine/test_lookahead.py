"""Tests for the per-pair lookahead matrix and the coalescing epoch
planner: matrix construction and min-plus closure, window arithmetic
(including the ``until``-boundary semantics), bind-time derivation
from a hand-built topology, and the load balance the locality binding
buys."""

import math

import pytest

from repro.engine import PartitionedSimulator
from repro.engine.domain import SimulationError
from repro.engine.sync import INFINITY, LookaheadMatrix, epoch_windows


# ----------------------------------------------------------------------
# LookaheadMatrix: construction, closure, infinity
# ----------------------------------------------------------------------

class TestLookaheadMatrix:
    def test_uniform_reproduces_the_scalar_synchronizer(self):
        matrix = LookaheadMatrix.uniform(3, 0.25)
        for i in range(3):
            for j in range(3):
                if i != j:
                    assert matrix.bound(i, j) == 0.25
        assert matrix.effective == 0.25
        # The diagonal closes to the cheapest cycle: out and back.
        assert matrix.bound(0, 0) == 0.5
        assert matrix.widest == 0.5

    def test_min_plus_closure_tightens_relayed_pairs(self):
        # Direct 0->2 is looser than the 0->1->2 relay; the closure
        # must take the relay.
        matrix = LookaheadMatrix(
            3,
            {(0, 1): 0.001, (1, 2): 0.002, (0, 2): 0.010},
            floor=1e-4,
        )
        assert matrix.bound(0, 1) == 0.001
        assert matrix.bound(0, 2) == pytest.approx(0.003)

    def test_unconnected_pairs_stay_infinite(self):
        # Domain 2 has no relation to anyone: its rows and columns
        # never constrain a window.
        matrix = LookaheadMatrix(
            3, {(0, 1): 0.001, (1, 0): 0.002}, floor=1e-4
        )
        for other in (0, 1):
            assert matrix.bound(other, 2) == INFINITY
            assert matrix.bound(2, other) == INFINITY
        assert matrix.bound(2, 2) == INFINITY
        # One-way relations stay one-way: no phantom reverse bound.
        assert matrix.bound(0, 0) == pytest.approx(0.003)
        triples = matrix.items()
        assert (0, 1, 0.001) in triples
        assert all(src != 2 and dst != 2 for src, dst, _ in triples)

    def test_validation(self):
        with pytest.raises(SimulationError):
            LookaheadMatrix(0, {}, floor=1e-4)
        with pytest.raises(SimulationError):
            LookaheadMatrix(2, {}, floor=0.0)  # zero floor
        with pytest.raises(SimulationError):
            LookaheadMatrix(2, {(0, 0): 1.0}, floor=1e-4)  # self-loop
        with pytest.raises(SimulationError):
            LookaheadMatrix(2, {(0, 5): 1.0}, floor=1e-4)  # range
        with pytest.raises(SimulationError):
            LookaheadMatrix(2, {(0, 1): 1e-5}, floor=1e-4)  # below floor


# ----------------------------------------------------------------------
# epoch_windows: coalescing arithmetic and the until boundary
# ----------------------------------------------------------------------

class TestEpochWindows:
    def test_windows_coalesce_to_the_pairwise_bounds(self):
        # Next work at t=1.0 in both domains; each destination's
        # horizon is the *other* side's send time plus the pair bound
        # (or its own cheapest cycle through the diagonal, whichever
        # is smaller).
        matrix = LookaheadMatrix(
            2, {(0, 1): 0.25, (1, 0): 0.75}, floor=1e-3
        )
        windows = epoch_windows([1.0, 1.0], matrix, until=10.0)
        assert windows == [(1.75, False), (1.25, False)]

    def test_idle_senders_drop_out_of_the_minimum(self):
        # Domain 1 — the only domain with a relation into domain 0 —
        # has its next work past until: it cannot send inside this
        # run, so domain 0 free-runs to the final barrier instead of
        # creeping one lookahead at a time.
        matrix = LookaheadMatrix(2, {(1, 0): 0.25}, floor=1e-3)
        windows = epoch_windows([1.0, 50.0], matrix, until=10.0)
        assert windows[0] == (10.0, True)
        # With domain 1 *active*, the same pair bound constrains it.
        windows = epoch_windows([1.0, 2.0], matrix, until=10.0)
        assert windows[0] == (2.25, False)

    def test_drained_run_returns_none(self):
        matrix = LookaheadMatrix.uniform(2, 0.001)
        assert epoch_windows([INFINITY, INFINITY], matrix, 10.0) is None
        assert epoch_windows([20.0, INFINITY], matrix, 10.0) is None

    def test_horizon_exactly_on_until_is_the_inclusive_final_barrier(self):
        # The coalesced horizon lands exactly on the target: the
        # window must clamp to (until, True) — an exclusive window at
        # until would strand events timed exactly there, and a window
        # past until would overrun the run target.
        matrix = LookaheadMatrix(
            2, {(0, 1): 0.5, (1, 0): 0.5}, floor=1e-3
        )
        windows = epoch_windows([0.5, INFINITY], matrix, until=1.0)
        assert windows == [(1.0, True), (1.0, True)]

    def test_regrant_at_until_dispatches_new_events_exactly_once(self):
        # Mail landing exactly on a granted horizon forces the planner
        # to re-issue (until, True); the re-run must dispatch only the
        # newly injected event (no double-dispatch, no skipped final
        # barrier).
        from repro.core.node import TUNNEL_IN
        from repro.engine.sync import MSG_TUNNEL

        sim = PartitionedSimulator(2, lookahead=0.5)
        fired = []
        sim.domains[1].at(1.0, fired.append, "edge")

        def cross_send():
            sim.router.send(1.0, 0, 1, MSG_TUNNEL, 1, "at-until")

        sim.domains[0].at(0.5, cross_send)

        class _Core:
            def __init__(self):
                self.received = []

            def physical_ingress(self, kind, payload):
                self.received.append((kind, payload))

        class _Emu:
            cores = [_Core(), _Core()]
            hosts = []

        sim.router.bind(_Emu)
        sim.run(until=1.0)
        assert fired == ["edge"]
        assert _Emu.cores[1].received == [(TUNNEL_IN, "at-until")]
        assert sim.router.messages_routed == 1
        # The final barrier ran: every clock sits exactly on until.
        assert all(d._now == 1.0 for d in sim.domains)

    def test_vector_length_is_validated(self):
        matrix = LookaheadMatrix.uniform(2, 0.001)
        with pytest.raises(SimulationError):
            epoch_windows([1.0], matrix, until=10.0)


# ----------------------------------------------------------------------
# Bind-time derivation from actual cross-domain pipe latencies
# ----------------------------------------------------------------------

def _chain_emulation():
    """c0 -- r0 -- r1 -- c1 with known latencies, split into two
    domains: domain 0 owns c0's side (links c0-r0, r0-r1), domain 1
    owns c1's side (link r1-c1)."""
    import repro.topology as rt
    from repro.core.assign import assign_by_vn_groups
    from repro.core.emulator import Emulation, EmulationConfig

    topology = rt.Topology("chain2d")
    c0 = topology.add_node(rt.NodeKind.CLIENT)
    c1 = topology.add_node(rt.NodeKind.CLIENT)
    r0 = topology.add_node(rt.NodeKind.STUB)
    r1 = topology.add_node(rt.NodeKind.STUB)
    topology.add_link(c0.id, r0.id, 10e6, 0.001)
    topology.add_link(r0.id, r1.id, 10e6, 0.003)
    topology.add_link(r1.id, c1.id, 10e6, 0.005)
    assignment = assign_by_vn_groups(topology, [[c0.id], [c1.id]])
    sim = PartitionedSimulator(2, lookahead=1e-6)
    config = EmulationConfig(num_cores=2, num_hosts=2)
    emulation = Emulation(sim, topology, config, assignment=assignment)
    return sim, emulation, config


def test_matrix_derived_from_pipe_latencies_at_bind_time():
    from repro.hardware.calibration import min_cross_core_latency

    sim, emulation, config = _chain_emulation()
    floor = min_cross_core_latency(config.core_spec)
    matrix = sim.matrix
    # Cheapest way into domain 1 from domain 0: the r0->r1 pipe
    # (domain 0, 3 ms) whose destination node anchors domain 1's
    # pipes. Reverse direction crosses via c1->r1 (5 ms).
    assert matrix.bound(0, 1) == pytest.approx(0.003 + floor)
    assert matrix.bound(1, 0) == pytest.approx(0.005 + floor)
    # Diagonal = cheapest cycle = sum of both crossings.
    assert matrix.bound(0, 0) == pytest.approx(0.008 + 2 * floor)
    # Derived bounds dwarf the uniform calibration floor the
    # simulator started with — that is the whole point.
    assert matrix.effective > 100 * floor
    assert sim.lookahead == matrix.effective


def test_derived_windows_beat_the_uniform_floor_epoch_count():
    """The scalability claim in one number: with per-pair bounds the
    same run takes far fewer epochs than under the uniform floor."""
    sim, emulation, config = _chain_emulation()
    derived = sim.matrix
    floor = derived.floor
    uniform_epochs = math.ceil(0.05 / floor)  # one floor per round
    next_times = [0.0, 0.0]
    epochs = 0
    while True:
        windows = epoch_windows(next_times, derived, until=0.05)
        if windows is None:
            break
        epochs += 1
        assert epochs < 1000, "planner failed to make progress"
        next_times = [
            horizon if not inclusive else INFINITY
            for (horizon, inclusive) in windows
        ]
    assert epochs * 100 < uniform_epochs


# ----------------------------------------------------------------------
# Load balance: the locality binding spreads events across domains
# ----------------------------------------------------------------------

def test_ring_domains_are_load_balanced():
    """The old modulo binding piled every VN host onto core 0, so
    domain 0 dispatched ~4x the events of any other domain on
    ring8x2. The locality binding must keep the spread bounded."""
    from repro.api import Scenario
    from repro.topology import ring_topology

    scenario = (
        Scenario(ring_topology(num_routers=8, vns_per_router=2), name="ring8")
        .distill("hop-by-hop")
        .assign(4)
        .seed(7)
        .netperf(flows=8)
        .observe(False)
        .backend("serial", domains=4)
    )
    scenario.build()
    scenario.run(until=0.05)
    counts = scenario.sim.events_by_domain()
    assert len(counts) == 4
    assert min(counts) > 0
    assert max(counts) <= 2 * min(counts), (
        f"per-domain event spread too wide: {counts}"
    )
