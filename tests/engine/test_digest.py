"""Digest-fold equivalence across kernels and mechanisms.

The digest contract has one byte stream and three producers:

* the sanitizer's :class:`DomainProbe` (the audited yardstick),
* the scalar kernel's observer fold (``enable_digest`` installs the
  probe machinery: per-event hook, callsite recomputed per event),
* the optimized kernels' inline fold (callsite bytes memoized, hash
  fed in joined chunks).

These tests pin all three to the same bytes, on the same workloads,
including partial-wrapped and bound-method callsites and runs ended
by stop(), limit, and a raising callback.
"""

import functools

import pytest

from repro.check.sanitize import DomainProbe, _callsite
from repro.core.kernel import KERNELS, numpy_available
from repro.engine.domain import _callsite_reference
from repro.engine.simulator import Simulator


def available_kernels():
    return [k for k in KERNELS if k != "numpy" or numpy_available()]


def _module_fn():
    pass


class _Thing:
    def method(self):
        pass


def _drive(sim):
    """A workload mixing every schedulable shape: anonymous post()
    entries, Event-carrying at()/schedule() entries, cancellations,
    bound methods, and partials."""
    thing = _Thing()
    state = {"hops": 0}

    def hop():
        state["hops"] += 1
        if state["hops"] < 40:
            sim.post(sim.now + 1e-4, hop)

    sim.post(0.0, hop)
    sim.at(1e-3, thing.method)
    sim.at(2e-3, functools.partial(functools.partial(_module_fn)))
    cancelled = sim.at(3e-3, _module_fn)
    cancelled.cancel()
    sim.schedule(4e-3, _module_fn)
    sim.run(until=0.05)


# ----------------------------------------------------------------------
# Callsite encodings
# ----------------------------------------------------------------------

@pytest.mark.parametrize("fn", [
    _module_fn,
    _Thing().method,
    functools.partial(_module_fn),
    functools.partial(functools.partial(_Thing().method)),
    lambda: None,
])
def test_callsite_encoders_agree(fn):
    sim = Simulator()
    expected = _callsite(fn).encode()
    assert _callsite_reference(fn) == expected
    assert sim._callsite_bytes(fn) == expected
    # Second call exercises the memo hit.
    assert sim._callsite_bytes(fn) == expected


# ----------------------------------------------------------------------
# Native digest == sanitizer probe, for every kernel
# ----------------------------------------------------------------------

def _probe_digest(kernel):
    sim = Simulator(kernel=kernel)
    probe = DomainProbe(0, keep_records=False).attach(sim)
    _drive(sim)
    return probe.hexdigest()


def _native_digest(kernel):
    sim = Simulator(kernel=kernel)
    sim.enable_digest()
    _drive(sim)
    return sim.digest_hexdigest()


def test_native_digest_matches_probe_on_every_kernel():
    expected = _probe_digest("scalar")
    for kernel in available_kernels():
        assert _probe_digest(kernel) == expected
        assert _native_digest(kernel) == expected


def test_scalar_observer_does_not_double_fold():
    # If the scalar observer and the step() inline fold both fired,
    # every event would be hashed twice and this equality would break.
    assert _native_digest("scalar") == _native_digest("batched")


# ----------------------------------------------------------------------
# Every exit path flushes the chunked fold
# ----------------------------------------------------------------------

class _Boom(RuntimeError):
    pass


def _interrupted_digest(kernel, events_before_boom):
    sim = Simulator(kernel=kernel)
    count = {"n": 0}

    def tick():
        count["n"] += 1
        if count["n"] == events_before_boom:
            raise _Boom()
        sim.post(sim.now + 1e-5, tick)

    sim.post(0.0, tick)
    sim.enable_digest()
    with pytest.raises(_Boom):
        sim.run()
    return sim.digest_hexdigest()


@pytest.mark.parametrize("events_before_boom", [1, 7, 100])
def test_raising_callback_flushes_identically(events_before_boom):
    digests = {
        k: _interrupted_digest(k, events_before_boom)
        for k in available_kernels()
    }
    assert len(set(digests.values())) == 1, digests


def test_stop_flushes_identically():
    def run(kernel):
        sim = Simulator(kernel=kernel)
        count = {"n": 0}

        def tick():
            count["n"] += 1
            if count["n"] >= 50:
                sim.stop()
            else:
                sim.post(sim.now + 1e-5, tick)

        sim.post(0.0, tick)
        sim.enable_digest()
        sim.run()
        return sim.digest_hexdigest()

    digests = {k: run(k) for k in available_kernels()}
    assert len(set(digests.values())) == 1, digests
