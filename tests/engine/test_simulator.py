"""Unit tests for the discrete-event simulator core."""

import pytest

from repro.engine import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_and_run_order():
    sim = Simulator()
    fired = []
    sim.schedule(2.0, fired.append, "b")
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(3.0, fired.append, "c")
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fifo():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(1.0, fired.append, tag)
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_run_until_leaves_future_events_pending():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "early")
    sim.schedule(5.0, fired.append, "late")
    sim.run(until=2.0)
    assert fired == ["early"]
    assert sim.now == 2.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_advances_clock_even_with_no_events():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    event.cancel()
    sim.run()
    assert fired == []


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()


def test_schedule_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.at(0.5, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_events_scheduled_during_dispatch():
    sim = Simulator()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(1.0, chain, 0)
    sim.run()
    assert fired == [0, 1, 2, 3]
    assert sim.now == 4.0


def test_call_soon_runs_at_current_time_after_queued():
    sim = Simulator()
    fired = []

    def first():
        sim.call_soon(fired.append, "soon")
        fired.append("first")

    sim.schedule(1.0, first)
    sim.schedule(1.0, fired.append, "second")
    sim.run()
    assert fired == ["first", "second", "soon"]
    assert sim.now == 1.0


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, lambda: sim.stop())
    sim.schedule(3.0, fired.append, "b")
    sim.run()
    assert fired == ["a"]
    sim.run()
    assert fired == ["a", "b"]


def test_step_single_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_run_until_before_now_raises():
    sim = Simulator()
    sim.run(until=5.0)
    with pytest.raises(SimulationError):
        sim.run(until=1.0)


def test_dispatch_counter():
    sim = Simulator()
    for _ in range(4):
        sim.schedule(1.0, lambda: None)
    sim.run()
    assert sim.events_dispatched == 4


def test_cancel_then_peek_repr_does_not_claim_pending():
    """Regression: cancel() drops fn/args; peeking at the event later
    (repr, heap inspection) must not assume a callable is present."""
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    event.cancel()
    assert event.fn is None
    assert "cancelled" in repr(event)
    # The heap still holds the event; draining it must skip cleanly.
    assert sim.run() == 1.0 or sim.now == 0.0


def test_dispatched_event_repr_is_not_pending():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    assert "pending" in repr(event)
    sim.run()
    # Dispatch cleared fn; a spent event must not read as pending.
    assert "dispatched" in repr(event)


def test_event_with_cleared_fn_is_skipped_by_dispatch():
    """Defence in depth: an event whose fn was cleared without the
    cancelled flag (e.g. already dispatched, or a buggy caller) is
    treated as cancelled by both run() and step()."""
    sim = Simulator()
    fired = []
    broken = sim.schedule(1.0, fired.append, "x")
    broken.fn = None  # simulate the hole cancel() used to leave
    sim.schedule(2.0, fired.append, "y")
    sim.run()
    assert fired == ["y"]

    sim2 = Simulator()
    broken2 = sim2.schedule(1.0, fired.append, "z")
    broken2.fn = None
    assert sim2.step() is False  # only the broken event; skipped, heap empty


def test_cancel_during_same_timestamp_dispatch():
    """An event cancelled by an earlier event at the same instant must
    not fire — the run loop re-checks after every dispatch."""
    sim = Simulator()
    fired = []
    holder = {}
    # Scheduled first => lower seq => fires first at the shared time.
    sim.at(1.0, lambda: holder["victim"].cancel())
    holder["victim"] = sim.at(1.0, fired.append, "victim")
    sim.run()
    assert fired == []


def test_on_dispatch_hook_sees_time_seq_and_fn():
    sim = Simulator()
    seen = []
    sim.on_dispatch = lambda event, fn: seen.append((event.time, event.seq, fn))
    marker = []
    sim.schedule(0.5, marker.append, 1)
    sim.run()
    assert len(seen) == 1
    time, seq, fn = seen[0]
    assert time == 0.5 and seq == 1
    assert fn == marker.append


def test_stop_mid_run_does_not_fast_forward_clock():
    # Regression: run(until=T) used to jump the clock to T even when
    # stop() halted the run with events still pending before T; the
    # resuming run() then dispatched those events in the past.
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, "a")
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, "b")
    sim.run(until=10.0)
    assert fired == ["a"]
    assert sim.now == 2.0  # last dispatched event, not 10.0
    sim.run(until=10.0)  # resumes cleanly; no backwards clock
    assert fired == ["a", "b"]
    assert sim.now == 10.0


def test_run_until_fast_forwards_only_on_natural_drain():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run(until=5.0)
    assert sim.now == 5.0  # heap drained naturally: idle fast-forward


def test_post_interleaves_with_at_in_time_order():
    sim = Simulator()
    fired = []
    sim.at(2.0, fired.append, "at-2")
    sim.post(1.0, fired.append, "post-1")
    sim.post(3.0, fired.append, "post-3")
    sim.at(1.5, fired.append, "at-1.5")
    sim.run()
    assert fired == ["post-1", "at-1.5", "at-2", "post-3"]
    assert sim.events_dispatched == 4


def test_post_in_past_raises():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.post(0.5, lambda: None)


def test_post_entries_dispatch_via_step():
    sim = Simulator()
    fired = []
    sim.post(1.0, fired.append, "x")
    assert sim.step()
    assert fired == ["x"]
    assert sim.now == 1.0
    assert not sim.step()


def test_on_dispatch_hook_sees_post_entries():
    # The hook receives a synthesized Event carrying the anonymous
    # entry's (time, seq) — the sanitizer digests both kinds alike.
    sim = Simulator()
    seen = []
    sim.on_dispatch = lambda event, fn: seen.append((event.time, event.seq))
    sim.at(1.0, lambda: None)
    sim.post(2.0, lambda: None)
    sim.run()
    assert seen == [(1.0, 1), (2.0, 2)]


def test_hooked_and_unhooked_runs_dispatch_identically():
    def drive(sim, fired):
        sim.at(1.0, fired.append, "a")
        sim.post(1.5, fired.append, "b")
        cancelled = sim.at(2.0, fired.append, "never")
        cancelled.cancel()
        sim.at(2.5, fired.append, "c")

    plain, hooked = Simulator(), Simulator()
    fired_plain, fired_hooked = [], []
    drive(plain, fired_plain)
    drive(hooked, fired_hooked)
    hooked.on_dispatch = lambda event, fn: None
    plain.run()
    hooked.run()
    assert fired_plain == fired_hooked == ["a", "b", "c"]
    assert plain.events_dispatched == hooked.events_dispatched == 3
    assert plain.now == hooked.now
