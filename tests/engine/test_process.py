"""Unit tests for generator-based processes and signals."""

import pytest

from repro.engine import Simulator, SimulationError, Interrupt


def test_process_sleeps():
    sim = Simulator()
    log = []

    def proc():
        log.append(("start", sim.now))
        yield 1.5
        log.append(("mid", sim.now))
        yield 0.5
        log.append(("end", sim.now))

    sim.spawn(proc())
    sim.run()
    assert log == [("start", 0.0), ("mid", 1.5), ("end", 2.0)]


def test_process_return_value():
    sim = Simulator()

    def proc():
        yield 1.0
        return 42

    p = sim.spawn(proc())
    sim.run()
    assert p.finished
    assert p.result == 42


def test_process_joins_another():
    sim = Simulator()
    log = []

    def worker():
        yield 2.0
        return "done"

    def waiter(target):
        result = yield target
        log.append((result, sim.now))

    w = sim.spawn(worker())
    sim.spawn(waiter(w))
    sim.run()
    assert log == [("done", 2.0)]


def test_join_already_finished_process():
    sim = Simulator()
    log = []

    def worker():
        yield 1.0
        return "early"

    def late_waiter(target):
        yield 5.0
        result = yield target
        log.append((result, sim.now))

    w = sim.spawn(worker())
    sim.spawn(late_waiter(w))
    sim.run()
    assert log == [("early", 5.0)]


def test_signal_wakes_all_waiters():
    sim = Simulator()
    log = []
    signal = sim.signal()

    def waiter(tag):
        value = yield signal
        log.append((tag, value, sim.now))

    sim.spawn(waiter("a"))
    sim.spawn(waiter("b"))
    sim.schedule(3.0, signal.fire, "go")
    sim.run()
    assert sorted(log) == [("a", "go", 3.0), ("b", "go", 3.0)]


def test_signal_listener_callback():
    sim = Simulator()
    seen = []
    signal = sim.signal()
    signal.listen(seen.append)
    sim.schedule(1.0, signal.fire, "x")
    sim.run()
    assert seen == ["x"]


def test_yield_none_resumes_same_time():
    sim = Simulator()
    times = []

    def proc():
        times.append(sim.now)
        yield None
        times.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert times == [0.0, 0.0]


def test_interrupt_cancels_sleep():
    sim = Simulator()
    log = []

    def sleeper():
        try:
            yield 100.0
            log.append("overslept")
        except Interrupt as intr:
            log.append(("interrupted", intr.cause, sim.now))

    p = sim.spawn(sleeper())
    sim.schedule(2.0, p.interrupt, "wake")
    sim.run()
    assert log == [("interrupted", "wake", 2.0)]
    assert p.finished


def test_unhandled_interrupt_terminates_process():
    sim = Simulator()

    def sleeper():
        yield 100.0

    p = sim.spawn(sleeper())
    sim.schedule(1.0, p.interrupt)
    sim.run()
    assert p.finished
    assert sim.now == pytest.approx(1.0)


def test_interrupt_finished_process_is_noop():
    sim = Simulator()

    def quick():
        yield 0.1

    p = sim.spawn(quick())
    sim.run()
    p.interrupt()
    sim.run()
    assert p.finished


def test_invalid_yield_raises():
    sim = Simulator()

    def bad():
        yield "not a valid target"

    sim.spawn(bad())
    with pytest.raises(SimulationError):
        sim.run()


def test_many_processes_interleave():
    sim = Simulator()
    log = []

    def ticker(tag, period, count):
        for _ in range(count):
            yield period
            log.append((sim.now, tag))

    sim.spawn(ticker("fast", 1.0, 4))
    sim.spawn(ticker("slow", 2.0, 2))
    sim.run()
    # Ties at t=2.0 and t=4.0 go to the event scheduled first (FIFO):
    # slow's timer was armed before fast re-armed its own.
    assert log == [
        (1.0, "fast"),
        (2.0, "slow"),
        (2.0, "fast"),
        (3.0, "fast"),
        (4.0, "slow"),
        (4.0, "fast"),
    ]
