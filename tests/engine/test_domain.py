"""Unit tests for the partitioned kernel: EventDomain epochs, the
DomainRouter mailbox, epoch_window arithmetic, and the
PartitionedSimulator facade."""

import pytest

from repro.engine import (
    EventDomain,
    PartitionedSimulator,
    SimulationError,
    Simulator,
)
from repro.engine.domain import INFINITY, Event
from repro.engine.sync import (
    MSG_DELIVER,
    MSG_HOST,
    MSG_TUNNEL,
    DomainChannel,
    DomainRouter,
    epoch_window,
)


# ----------------------------------------------------------------------
# Event ordering: the (time, seq) tuple prefix is the only ordering
# ----------------------------------------------------------------------

def test_event_defines_no_ordering():
    """The PR 3 tuple-heap migration left ``Event.__lt__`` behind as
    dead code; it is gone now. Events must not be orderable at all —
    any comparison besides the heap's ``(time, seq)`` tuple prefix
    would be a second, driftable definition of dispatch order."""
    assert "__lt__" not in Event.__dict__
    a = Event(1.0, 1, print, ())
    b = Event(2.0, 2, print, ())
    with pytest.raises(TypeError):
        a < b  # noqa: B015 - the raise is the assertion


def test_heap_order_is_time_then_seq():
    sim = Simulator()
    fired = []
    sim.at(2.0, fired.append, "t2-first")
    sim.at(1.0, fired.append, "t1-first")
    sim.at(1.0, fired.append, "t1-second")
    sim.post(1.0, fired.append, "t1-third")  # anonymous, same counter
    sim.at(2.0, fired.append, "t2-second")
    sim.run()
    assert fired == [
        "t1-first", "t1-second", "t1-third", "t2-first", "t2-second",
    ]


# ----------------------------------------------------------------------
# EventDomain.run_until: one epoch
# ----------------------------------------------------------------------

def test_run_until_exclusive_stops_before_horizon():
    domain = EventDomain()
    fired = []
    domain.at(1.0, fired.append, "inside")
    domain.at(2.0, fired.append, "boundary")
    domain.at(3.0, fired.append, "beyond")
    count = domain.run_until(2.0)
    assert count == 1
    assert fired == ["inside"]
    assert domain.now == 2.0  # clock lands exactly on the horizon


def test_run_until_inclusive_takes_boundary_events():
    domain = EventDomain()
    fired = []
    domain.at(2.0, fired.append, "boundary")
    domain.at(2.0, fired.append, "boundary-2")
    domain.at(3.0, fired.append, "beyond")
    count = domain.run_until(2.0, inclusive=True)
    assert count == 2
    assert fired == ["boundary", "boundary-2"]
    assert domain.now == 2.0


def test_run_until_idle_domain_fast_forwards():
    domain = EventDomain()
    assert domain.run_until(5.0) == 0
    assert domain.now == 5.0


def test_run_until_horizon_in_past_raises():
    domain = EventDomain()
    domain.run_until(2.0)
    with pytest.raises(SimulationError):
        domain.run_until(1.0)


def test_run_until_fires_dispatch_hook():
    domain = EventDomain()
    seen = []
    domain.on_dispatch = lambda event, fn: seen.append((event.time, event.seq))
    domain.at(0.5, lambda: None)
    domain.post(1.0, lambda: None)
    domain.run_until(2.0)
    assert seen == [(0.5, 1), (1.0, 2)]


def test_run_until_skips_cancelled():
    domain = EventDomain()
    fired = []
    victim = domain.at(1.0, fired.append, "victim")
    domain.at(1.5, fired.append, "live")
    victim.cancel()
    assert domain.run_until(2.0) == 1
    assert fired == ["live"]


def test_next_event_time():
    domain = EventDomain()
    assert domain.next_event_time() == INFINITY
    cancelled = domain.at(1.0, lambda: None)
    domain.at(2.0, lambda: None)
    cancelled.cancel()
    # The cancelled head is discarded by the peek, not dispatched.
    assert domain.next_event_time() == 2.0
    assert domain.pending == 1


# ----------------------------------------------------------------------
# epoch_window
# ----------------------------------------------------------------------

def test_epoch_window_arithmetic():
    # No pending work anywhere: done.
    assert epoch_window(INFINITY, 0.1, None) is None
    assert epoch_window(INFINITY, 0.1, 5.0) is None
    # Earliest work beyond the target: done.
    assert epoch_window(6.0, 0.1, 5.0) is None
    # Plenty of room: exclusive window one lookahead wide.
    assert epoch_window(1.0, 0.1, 5.0) == (1.1, False)
    assert epoch_window(1.0, 0.1, None) == (1.1, False)
    # Window reaching the target clamps to it and turns inclusive,
    # matching run(until=T)'s convention of dispatching events at T.
    assert epoch_window(4.95, 0.1, 5.0) == (5.0, True)
    assert epoch_window(5.0, 0.1, 5.0) == (5.0, True)


# ----------------------------------------------------------------------
# DomainChannel
# ----------------------------------------------------------------------

def test_domain_channel_serializes_back_to_back():
    channel = DomainChannel(rate_bps=8e6, latency_s=1e-3)  # 1 us/byte
    first = channel.delivery_time(0.0, 1000)
    assert first == pytest.approx(1000e-6 + 1e-3)
    # Sent while the wire is busy: serialization queues behind.
    second = channel.delivery_time(0.0, 1000)
    assert second == pytest.approx(2000e-6 + 1e-3)
    # After the wire drains, a later send starts from `now`.
    third = channel.delivery_time(1.0, 1000)
    assert third == pytest.approx(1.0 + 1000e-6 + 1e-3)
    assert channel.messages == 3
    assert channel.bytes_sent == 3000


def test_domain_channel_rejects_zero_latency():
    with pytest.raises(ValueError):
        DomainChannel(1e9, 0.0)


# ----------------------------------------------------------------------
# DomainRouter
# ----------------------------------------------------------------------

class _FakeCore:
    def __init__(self):
        self.received = []

    def physical_ingress(self, kind, payload):
        self.received.append((kind, payload))


class _FakeHost:
    def __init__(self):
        self.received = []

    def receive_from_switch(self, packet):
        self.received.append(packet)


class _FakeEmulation:
    def __init__(self, num_cores, num_hosts):
        self.cores = [_FakeCore() for _ in range(num_cores)]
        self.hosts = [_FakeHost() for _ in range(num_hosts)]


def test_router_flush_orders_by_time_src_seq():
    from repro.core.node import DELIVER, TUNNEL_IN

    domains = [EventDomain(domain_id=i) for i in range(2)]
    emulation = _FakeEmulation(num_cores=2, num_hosts=1)
    router = DomainRouter(2)
    router.bind(emulation)
    # Queued deliberately out of order; all destined for domain 1.
    router.send(2.0, 0, 1, MSG_TUNNEL, 1, "late")
    router.send(1.0, 1, 1, MSG_DELIVER, 1, "src1")
    router.send(1.0, 0, 1, MSG_TUNNEL, 1, "src0")
    router.send(1.0, 0, 1, MSG_HOST, 0, "src0-second")
    assert router.min_pending_time() == 1.0
    assert router.flush(domains) == 4
    assert router.messages_routed == 4
    assert router.min_pending_time() == INFINITY
    domains[1].run_until(3.0)
    core = emulation.cores[1]
    # (time, src_domain, seq) order: src0's two sends (seq 0 then 1)
    # precede src1's at the shared time; the t=2.0 send is last.
    assert core.received == [
        (TUNNEL_IN, "src0"), (DELIVER, "src1"), (TUNNEL_IN, "late"),
    ]
    assert emulation.hosts[0].received == ["src0-second"]


def test_router_unbound_raises():
    router = DomainRouter(1)
    router.send(1.0, 0, 0, MSG_TUNNEL, 0, "x")
    with pytest.raises(SimulationError):
        router.flush([EventDomain()])


# ----------------------------------------------------------------------
# PartitionedSimulator (serial executor)
# ----------------------------------------------------------------------

def test_partitioned_single_domain_matches_simulator():
    """With one domain the epoch loop must dispatch the exact stream
    the classic Simulator does (same events, same clock behavior)."""

    def drive(sim):
        fired = []
        sim.at(1.0, fired.append, "a")
        sim.schedule(1.5, fired.append, "b")
        sim.post(2.0, fired.append, "c")
        doomed = sim.at(2.5, fired.append, "never")
        doomed.cancel()
        return fired

    plain = Simulator()
    part = PartitionedSimulator(1, lookahead=0.25)
    fired_plain = drive(plain)
    fired_part = drive(part)
    assert plain.run(until=3.0) == part.run(until=3.0) == 3.0
    assert fired_plain == fired_part == ["a", "b", "c"]
    assert plain.events_dispatched == part.events_dispatched == 3
    assert part.now == 3.0


def test_partitioned_domains_advance_in_lockstep():
    sim = PartitionedSimulator(2, lookahead=0.5)
    order = []
    sim.domains[0].at(1.0, order.append, ("d0", 1.0))
    sim.domains[1].at(1.2, order.append, ("d1", 1.2))
    sim.domains[0].at(3.0, order.append, ("d0", 3.0))
    sim.run(until=4.0)
    assert order == [("d0", 1.0), ("d1", 1.2), ("d0", 3.0)]
    assert sim.now == 4.0  # every domain clock aligned with the target
    assert sim.events_by_domain() == [2, 1]
    assert sim.epochs >= 2


def test_partitioned_run_delivers_router_mail():
    from repro.core.node import TUNNEL_IN

    sim = PartitionedSimulator(2, lookahead=0.1)
    emulation = _FakeEmulation(num_cores=2, num_hosts=0)
    sim.router.bind(emulation)

    def cross_send():
        # A domain-0 event sends to domain 1, one lookahead out.
        sim.router.send(
            sim.domains[0].now + 0.1, 0, 1, MSG_TUNNEL, 1, "ping"
        )

    sim.domains[0].at(1.0, cross_send)
    sim.run(until=2.0)
    assert emulation.cores[1].received == [(TUNNEL_IN, "ping")]
    assert sim.router.messages_routed == 1


def test_partitioned_stop_halts_at_epoch_boundary():
    sim = PartitionedSimulator(1, lookahead=0.1)
    fired = []
    sim.at(1.0, fired.append, "a")
    sim.at(1.0, sim.stop)
    sim.at(5.0, fired.append, "b")
    sim.run(until=10.0)
    assert fired == ["a"]
    assert sim.now < 5.0
    sim.run(until=10.0)
    assert fired == ["a", "b"]


def test_partitioned_validates_construction():
    with pytest.raises(SimulationError):
        PartitionedSimulator(0, lookahead=0.1)
    with pytest.raises(SimulationError):
        PartitionedSimulator(2, lookahead=0.0)
