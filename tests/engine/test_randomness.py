"""Unit tests for named RNG streams."""

from repro.engine import RngRegistry


def test_same_name_returns_same_stream():
    rng = RngRegistry(seed=1)
    assert rng.stream("a") is rng.stream("a")


def test_streams_reproducible_across_registries():
    first = [RngRegistry(seed=7).stream("loss").random() for _ in range(5)]
    second = [RngRegistry(seed=7).stream("loss").random() for _ in range(5)]
    assert first == second


def test_different_names_are_independent():
    rng = RngRegistry(seed=7)
    a = [rng.stream("a").random() for _ in range(5)]
    b = [rng.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RngRegistry(seed=1).stream("x").random()
    b = RngRegistry(seed=2).stream("x").random()
    assert a != b


def test_fork_is_deterministic():
    a = RngRegistry(seed=3).fork("child").stream("s").random()
    b = RngRegistry(seed=3).fork("child").stream("s").random()
    assert a == b


def test_fork_differs_from_parent():
    parent = RngRegistry(seed=3)
    child = parent.fork("child")
    assert parent.stream("s").random() != child.stream("s").random()
