"""Tests for the edge CPU model."""

import math

import pytest

from repro.engine import Simulator
from repro.hardware import EdgeCpu
from repro.hardware.calibration import EdgeHostSpec


def make_cpu(sim, **overrides):
    spec = EdgeHostSpec(**overrides) if overrides else EdgeHostSpec()
    return EdgeCpu(sim, spec)


def test_work_takes_instruction_time():
    sim = Simulator()
    cpu = make_cpu(sim)
    done = []
    cpu.run("p1", 1_000_000, lambda: done.append(sim.now))  # 1 ms at 1 GHz
    sim.run()
    assert done == [pytest.approx(0.001)]


def test_fifo_serialization():
    sim = Simulator()
    cpu = make_cpu(sim)
    cpu.register("p1")
    done = []
    cpu.run("p1", 1_000_000, lambda: done.append(("a", sim.now)))
    cpu.run("p1", 1_000_000, lambda: done.append(("b", sim.now)))
    sim.run()
    assert done[0] == ("a", pytest.approx(0.001))
    assert done[1] == ("b", pytest.approx(0.002))


def test_no_context_switch_single_process():
    sim = Simulator()
    cpu = make_cpu(sim)
    cpu.register("p1")
    for _ in range(10):
        cpu.run("p1", 1000)
    sim.run()
    assert cpu.context_switches == 0


def test_context_switch_cost_added_between_processes():
    sim = Simulator()
    cpu = make_cpu(sim)
    cpu.register("p1")
    cpu.register("p2")
    done = []
    cpu.run("p1", 1_000_000, lambda: done.append(sim.now))
    cpu.run("p2", 1_000_000, lambda: done.append(sim.now))
    sim.run()
    switch = cpu.context_switch_cost()
    assert switch > 0
    assert done[1] == pytest.approx(0.002 + switch)
    assert cpu.context_switches == 1


def test_context_switch_cost_grows_with_process_count():
    sim = Simulator()
    cpu = make_cpu(sim)
    cpu.register("p1")
    cpu.register("p2")
    cost_2 = cpu.context_switch_cost()
    for index in range(98):
        cpu.register(f"extra-{index}")
    cost_100 = cpu.context_switch_cost()
    assert cost_100 > cost_2
    expected = 2.4e-6 + 3.1e-6 * math.log(100)
    assert cost_100 == pytest.approx(expected)


def test_run_seconds():
    sim = Simulator()
    cpu = make_cpu(sim)
    done = []
    cpu.run_seconds("kernel", 0.005, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.005)]


def test_utilization_accounting():
    sim = Simulator()
    cpu = make_cpu(sim)
    cpu.run("p1", 5_000_000)  # 5 ms
    sim.run(until=0.010)
    assert cpu.utilization(0.010) == pytest.approx(0.5)


def test_negative_work_rejected():
    sim = Simulator()
    cpu = make_cpu(sim)
    with pytest.raises(ValueError):
        cpu.run("p1", -1)
    with pytest.raises(ValueError):
        cpu.run_seconds("p1", -0.1)


def test_unregister_reduces_count():
    sim = Simulator()
    cpu = make_cpu(sim)
    cpu.register("a")
    cpu.register("b")
    assert cpu.process_count == 2
    cpu.unregister("b")
    assert cpu.process_count == 1
    assert cpu.context_switch_cost() == 0.0


def test_idle_cpu_resumes_after_gap():
    sim = Simulator()
    cpu = make_cpu(sim)
    done = []
    cpu.run("p", 1_000_000, lambda: done.append(sim.now))
    sim.run()
    sim.at(1.0, cpu.run, "p", 1_000_000, lambda: done.append(sim.now))
    sim.run()
    assert done == [pytest.approx(0.001), pytest.approx(1.001)]
