"""Tests for physical link serialization and drops."""

import pytest

from repro.engine import Simulator
from repro.hardware import PhysicalLink


def test_single_packet_timing():
    sim = Simulator()
    link = PhysicalLink(sim, rate_bps=1e6, latency_s=0.001, queue_limit=4)
    arrivals = []
    assert link.send(1250, arrivals.append, "a")  # 10 ms serialization
    sim.run()
    assert arrivals == ["a"]
    assert sim.now == pytest.approx(0.011)


def test_back_to_back_serialization():
    sim = Simulator()
    link = PhysicalLink(sim, rate_bps=1e6, latency_s=0.0)
    arrivals = []
    link.send(1250, lambda: arrivals.append(sim.now))
    link.send(1250, lambda: arrivals.append(sim.now))
    sim.run()
    assert arrivals == [pytest.approx(0.01), pytest.approx(0.02)]


def test_queue_overflow_drops():
    sim = Simulator()
    link = PhysicalLink(sim, rate_bps=1e6, queue_limit=2)
    accepted = sum(link.send(1250, lambda: None) for _ in range(5))
    assert accepted == 2
    assert link.dropped == 3
    assert link.accepted == 2


def test_queue_drains_over_time():
    sim = Simulator()
    link = PhysicalLink(sim, rate_bps=1e6, queue_limit=2)
    link.send(1250, lambda: None)
    link.send(1250, lambda: None)
    assert not link.send(1250, lambda: None)
    sim.run(until=0.015)  # first packet serialized at 10 ms
    assert link.queued == 1
    assert link.send(1250, lambda: None)


def test_framing_overhead_counts_against_wire():
    sim = Simulator()
    link = PhysicalLink(sim, rate_bps=1e6, latency_s=0.0, framing_bytes=250)
    done = []
    link.send(1000, lambda: done.append(sim.now))
    sim.run()
    assert done[0] == pytest.approx(0.01)  # 1250 wire bytes at 1 Mb/s
    assert link.bytes_sent == 1250


def test_idle_gap_resets_serializer():
    sim = Simulator()
    link = PhysicalLink(sim, rate_bps=1e6, latency_s=0.0)
    done = []
    link.send(1250, lambda: done.append(sim.now))
    sim.run()
    sim.at(1.0, lambda: link.send(1250, lambda: done.append(sim.now)))
    sim.run()
    assert done == [pytest.approx(0.01), pytest.approx(1.01)]


def test_invalid_rate():
    sim = Simulator()
    with pytest.raises(ValueError):
        PhysicalLink(sim, rate_bps=0)


def test_callback_args_passed():
    sim = Simulator()
    link = PhysicalLink(sim, rate_bps=1e9)
    seen = []
    link.send(100, lambda a, b: seen.append((a, b)), 1, "x")
    sim.run()
    assert seen == [(1, "x")]
