"""The calibrated constants must keep implying the paper's
system-level numbers (guards against silent drift)."""

import pytest

from repro.hardware.calibration import (
    DEFAULT_CORE_SPEC,
    DEFAULT_EDGE_SPEC,
    GIGABIT_EDGE_SPEC,
)


def test_core_tick_is_ten_kilohertz():
    assert DEFAULT_CORE_SPEC.tick_s == pytest.approx(1e-4)


def test_core_cpu_implies_8hop_plateau():
    # ~90 kpps CPU-bound at 8 hops (paper Fig. 4).
    pps = 1.0 / (
        DEFAULT_CORE_SPEC.per_packet_s + 8 * DEFAULT_CORE_SPEC.per_hop_s
    )
    assert 80_000 < pps < 100_000


def test_core_cpu_half_utilized_at_nic_plateau():
    # ~50% CPU at the 120 kpps 1-hop NIC-bound plateau.
    utilization = 120_000 * (
        DEFAULT_CORE_SPEC.per_packet_s + DEFAULT_CORE_SPEC.per_hop_s
    )
    assert 0.4 < utilization < 0.6


def test_nic_plateau_is_line_rate_at_1kb():
    # 1 Gb/s at ~1 KB average (2 data : 1 ack) is ~120 kpps.
    average_packet = (1540 + 1540 + 40) / 3
    pps = DEFAULT_CORE_SPEC.nic_bps / (average_packet * 8)
    assert 110_000 < pps < 130_000


def test_tunnel_costs_make_crossings_2_to_3x():
    # Local 2-hop cost vs fully-crossing cost (Table 1's degradation).
    spec = DEFAULT_CORE_SPEC
    local = spec.per_packet_s + 2 * spec.per_hop_s
    crossing = (
        local + spec.tunnel_send_s + spec.tunnel_recv_s
        + 2 * spec.deliver_order_s
    )
    assert 2.0 < crossing / local < 4.5


def test_payload_tunneling_memcpy_dominates_descriptors():
    spec = DEFAULT_CORE_SPEC
    body_cost = spec.tunnel_byte_s * 1040
    assert body_cost > 3 * spec.tunnel_byte_s * spec.descriptor_bytes


def test_edge_knee_at_76_instructions_per_byte():
    # 95 Mb/s of 1500 B payloads = ~7917 pkts/s = 126.3 us/pkt budget;
    # minus the stack cost, ~76 i/B of application compute fits.
    spec = DEFAULT_EDGE_SPEC
    budget = 1500 / (95e6 / 8) - spec.per_packet_stack_s
    knee = budget * spec.instructions_per_s / 1500
    assert 72 < knee < 80


def test_edge_framing_gives_95_percent_goodput():
    spec = DEFAULT_EDGE_SPEC
    goodput = 1500 / (1500 + spec.framing_bytes)
    assert goodput == pytest.approx(0.95, abs=0.01)


def test_gigabit_edge_differs_only_in_rate():
    assert GIGABIT_EDGE_SPEC.nic_bps == 1e9
    assert GIGABIT_EDGE_SPEC.per_packet_stack_s == DEFAULT_EDGE_SPEC.per_packet_stack_s


def test_specs_are_frozen():
    with pytest.raises(Exception):
        DEFAULT_CORE_SPEC.tick_s = 1.0
