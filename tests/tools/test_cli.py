"""Tests for the repro-net CLI."""

import pytest

from repro.tools import main
from repro.topology import load_gml


def test_generate_ring(tmp_path, capsys):
    out = tmp_path / "ring.gml"
    assert main(["generate", "ring", "--routers", "6", "--vns", "2", "-o", str(out)]) == 0
    topology = load_gml(str(out))
    assert topology.num_nodes == 18
    assert "18 nodes" in capsys.readouterr().out


def test_generate_transit_stub_deterministic(tmp_path):
    a, b = tmp_path / "a.gml", tmp_path / "b.gml"
    main(["generate", "transit-stub", "--seed", "5", "-o", str(a)])
    main(["generate", "transit-stub", "--seed", "5", "-o", str(b)])
    assert a.read_text() == b.read_text()


def test_info_reports_classes(tmp_path, capsys):
    out = tmp_path / "ts.gml"
    main(["generate", "transit-stub", "-o", str(out)])
    capsys.readouterr()
    assert main(["info", str(out)]) == 0
    text = capsys.readouterr().out
    assert "connected: True" in text
    assert "transit-transit" in text
    assert "client-stub" in text


def test_annotate_overrides_bandwidths(tmp_path, capsys):
    source = tmp_path / "ts.gml"
    out = tmp_path / "annotated.gml"
    main(["generate", "transit-stub", "-o", str(source)])
    assert main([
        "annotate", str(source), "--transit-bw", "155", "-o", str(out)
    ]) == 0
    topology = load_gml(str(out))
    from repro.topology import classify_link, LinkKind

    transit_links = [
        l for l in topology.links.values()
        if classify_link(topology, l) is LinkKind.TRANSIT_TRANSIT
    ]
    assert transit_links
    assert all(l.bandwidth_bps == pytest.approx(155e6) for l in transit_links)


def test_distill_last_mile(tmp_path, capsys):
    source = tmp_path / "ring.gml"
    out = tmp_path / "distilled.gml"
    main(["generate", "ring", "--routers", "20", "--vns", "20", "-o", str(source)])
    capsys.readouterr()
    assert main(["distill", str(source), "--mode", "last-mile", "-o", str(out)]) == 0
    text = capsys.readouterr().out
    assert "590 pipes" in text
    distilled = load_gml(str(out))
    assert distilled.num_links == 590


def test_route_command(tmp_path, capsys):
    source = tmp_path / "star.gml"
    main(["generate", "star", "--vns", "4", "-o", str(source)])
    capsys.readouterr()
    assert main(["route", str(source), "--src", "1", "--dst", "4"]) == 0
    text = capsys.readouterr().out
    assert "2 hops" in text


def test_route_unreachable(tmp_path, capsys):
    gml = tmp_path / "two.gml"
    gml.write_text(
        'graph [ node [ id 0 kind "client" ] node [ id 1 kind "client" ] ]\n'
    )
    assert main(["route", str(gml), "--src", "0", "--dst", "1"]) == 1


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["frobnicate"])


def test_import_caida(tmp_path, capsys):
    source = tmp_path / "links.txt"
    source.write_text("701 1239\n701 3356\n1239 3356\n")
    out = tmp_path / "imported.gml"
    assert main([
        "import", str(source), "--format", "caida", "--clients", "1",
        "-o", str(out),
    ]) == 0
    topology = load_gml(str(out))
    assert topology.num_nodes >= 3
    assert len(topology.clients()) >= 1
    assert "imported" in capsys.readouterr().out


def test_import_bgp(tmp_path):
    source = tmp_path / "paths.txt"
    source.write_text("701 1239 3356\n3356 7018\n")
    out = tmp_path / "imported.gml"
    assert main(["import", str(source), "--format", "bgp", "-o", str(out)]) == 0
    assert load_gml(str(out)).num_links == 3


def test_emulate_is_a_deprecated_alias_for_run(tmp_path, capsys):
    source = tmp_path / "ring.gml"
    main(["generate", "ring", "--routers", "4", "--vns", "2", "-o", str(source)])
    capsys.readouterr()
    assert main([
        "emulate", str(source), "--flows", "2", "--seconds", "1.0",
    ]) == 0
    captured = capsys.readouterr()
    assert "deprecated" in captured.err
    assert "repro-net run" in captured.err
    import json

    raw = json.loads(captured.out)  # delegates to `run`: RunReport JSON
    assert raw["metrics"]["accuracy.packets_delivered"] > 0


def test_emulate_forwards_mode_and_cores(tmp_path, capsys):
    source = tmp_path / "ring.gml"
    main(["generate", "ring", "--routers", "6", "--vns", "2", "-o", str(source)])
    capsys.readouterr()
    assert main([
        "emulate", str(source), "--mode", "last-mile", "--cores", "2",
        "--flows", "2", "--seconds", "1.0",
    ]) == 0
    import json

    raw = json.loads(capsys.readouterr().out)
    assert raw["config"]["num_cores"] == 2
    assert raw["metrics"]["distill.pipes"] > 0


def test_run_writes_run_report(tmp_path, capsys):
    source = tmp_path / "ring.gml"
    main(["generate", "ring", "--routers", "4", "--vns", "2", "-o", str(source)])
    capsys.readouterr()
    report_path = tmp_path / "report.json"
    csv_path = tmp_path / "report.csv"
    assert main([
        "run", str(source), "--cores", "2", "--hosts", "2", "--flows", "2",
        "--seconds", "1.0", "--report", str(report_path), "--csv", str(csv_path),
    ]) == 0
    text = capsys.readouterr().out
    assert "RunReport" in text

    from repro.obs import RunReport

    report = RunReport.load(str(report_path))
    assert report.metric("accuracy.packets_delivered") > 0
    assert report.metric("pipe.arrivals") > 0
    assert report.metric("sched.wakeups{core=0}") > 0
    assert report.metric_sum("core.utilization") > 0
    assert report.config["num_cores"] == 2
    assert "metric,value" in csv_path.read_text()


def test_run_prints_json_without_output_paths(tmp_path, capsys):
    source = tmp_path / "star.gml"
    main(["generate", "star", "--vns", "4", "-o", str(source)])
    capsys.readouterr()
    assert main([
        "run", str(source), "--flows", "2", "--seconds", "0.5", "--no-obs",
    ]) == 0
    import json

    raw = json.loads(capsys.readouterr().out)
    assert raw["metrics"]["accuracy.packets_entered"] > 0
    # Null registry: no hot-path timing histograms in the report.
    assert "pipe.enqueue_s" not in raw["metrics"]


def test_check_src_is_clean(capsys):
    import os

    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    assert main(["check", os.path.normpath(src)]) == 0
    assert "no determinism violations" in capsys.readouterr().out


def test_sanitize_seeded_scenario_passes(tmp_path, capsys):
    gml = tmp_path / "dumbbell.gml"
    main(["generate", "dumbbell", "--vns", "2", "-o", str(gml)])
    capsys.readouterr()
    assert main([
        "sanitize", str(gml), "--seeds", "1,2,3", "--seconds", "0.3",
        "--flows", "2",
    ]) == 0
    out = capsys.readouterr().out
    assert out.count("OK") == 3
    assert "digest-identical" in out


def test_sanitize_detects_injected_fault(tmp_path, capsys):
    gml = tmp_path / "dumbbell.gml"
    main(["generate", "dumbbell", "--vns", "2", "-o", str(gml)])
    capsys.readouterr()
    assert main([
        "sanitize", str(gml), "--seeds", "1", "--seconds", "0.3",
        "--flows", "2", "--inject-fault",
    ]) == 1
    out = capsys.readouterr().out
    assert "NONDETERMINISTIC" in out
    assert "run 1:" in out and "t=" in out  # first-divergence report


def test_exp_ls_lists_builtin_suites(capsys):
    assert main(["exp", "ls"]) == 0
    text = capsys.readouterr().out
    for name in ("smoke", "fig4", "fig8", "fig12"):
        assert name in text


def test_exp_run_and_report_produce_tidy_dataset(tmp_path, capsys):
    out_dir = str(tmp_path / "results")
    assert main(["exp", "run", "smoke", "--out-dir", out_dir]) == 0
    capsys.readouterr()
    assert main(["exp", "report", "smoke", "--out-dir", out_dir]) == 0
    capsys.readouterr()
    csv_text = (tmp_path / "results" / "smoke" / "dataset.csv").read_text()
    header = csv_text.splitlines()[0].split(",")
    assert header[:3] == ["run_id", "seed", "flows"]  # keyed by the axes
    assert "goodput_bps" in header
    assert len(csv_text.splitlines()) == 5  # header + 4 runs
    import json

    data = json.loads(
        (tmp_path / "results" / "smoke" / "dataset.json").read_text()
    )
    assert data["format"] == "repro-exp-dataset/1"
    assert all(row["status"] == "ok" for row in data["rows"])


def test_exp_resume_completes_interrupted_sweep(tmp_path, capsys):
    out_dir = str(tmp_path / "results")
    assert main(["exp", "run", "smoke", "--out-dir", out_dir, "--limit", "2"]) == 0
    assert main(["exp", "ls", "smoke", "--out-dir", out_dir]) == 1  # incomplete
    capsys.readouterr()
    assert main(["exp", "resume", "smoke", "--out-dir", out_dir]) == 0
    text = capsys.readouterr().out
    assert "2 skipped" in text
    assert main(["exp", "ls", "smoke", "--out-dir", out_dir]) == 0


def test_exp_report_before_run_fails_with_hint(tmp_path, capsys):
    assert main([
        "exp", "report", "smoke", "--out-dir", str(tmp_path / "empty"),
    ]) == 2
    assert "no sweep manifest" in capsys.readouterr().err


def test_exp_rejects_unknown_suite(tmp_path, capsys):
    assert main(["exp", "run", "figZ", "--out-dir", str(tmp_path)]) == 2
    assert "figZ" in capsys.readouterr().err


def test_run_out_dir_defaults_report_paths(tmp_path, capsys):
    source = tmp_path / "star.gml"
    main(["generate", "star", "--vns", "4", "-o", str(source)])
    capsys.readouterr()
    out_dir = tmp_path / "outrun"
    assert main([
        "run", str(source), "--flows", "2", "--seconds", "0.5",
        "--out-dir", str(out_dir),
    ]) == 0
    assert (out_dir / "report.json").exists()
    assert (out_dir / "report.csv").exists()
