"""An adaptive overlay reacting to injected network changes (Sec. 5.3).

Builds a transit-stub underlay, forms an ACDC-style overlay over 30
member VNs, lets it self-organize toward a low-cost tree meeting a
delay target, then perturbs link delays (the paper's fault-injection
knob) and watches the overlay trade cost for delay and back.

Run:  python examples/adaptive_overlay.py
"""

import random

from repro.apps import AcdcOverlay
from repro.core import (
    EmulationConfig,
    ExperimentPipeline,
    FaultInjector,
    LinkPerturbation,
)
from repro.engine import Simulator
from repro.topology import TransitStubSpec, transit_stub_topology


def main() -> None:
    topology = transit_stub_topology(
        TransitStubSpec(
            transit_nodes_per_domain=4,
            stub_domains_per_transit_node=3,
            stub_nodes_per_domain=4,
        ),
        random.Random(5),
    )
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )

    members = sorted(random.Random(6).sample(range(emulation.num_vns), 30))
    overlay = AcdcOverlay(emulation, members, delay_target_s=1.0)
    overlay.delay_target_s = overlay.spt_delay() / 0.8
    print(f"members: {len(members)}, delay target {overlay.delay_target_s*1e3:.0f} ms "
          f"(SPT best {overlay.spt_delay()*1e3:.0f} ms)")

    injector = FaultInjector(emulation)
    injector.start_perturbation(
        LinkPerturbation(period_s=25.0, link_fraction=0.25, latency_scale=(1.0, 1.25)),
        start_s=200.0,
        stop_s=500.0,
    )

    print(f"\n{'t(s)':>6} {'cost/MST':>9} {'max delay (ms)':>15} {'switches':>9}")

    def report():
        switches = sum(m.parent_switches for m in overlay.members.values())
        print(
            f"{sim.now:>6.0f} {overlay.tree_cost()/overlay.mst_cost():>9.2f} "
            f"{overlay.actual_max_delay()*1e3:>15.0f} {switches:>9}"
        )

    for t in range(0, 801, 50):
        sim.at(float(t), report)
    overlay.start()
    sim.run(until=801.0)
    overlay.stop()
    print("\n(perturbation active between t=200 and t=500)")


if __name__ == "__main__":
    main()
