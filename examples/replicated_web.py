"""Replicated web service under interior contention (paper Sec. 5.2).

A small transit-stub topology hosts a web server (and optionally a
replica); client clouds play back a synthetic trace. With one server,
every response squeezes through the server's interior attachment and
latencies grow a heavy tail; a replica splits the load and the tail
collapses — visible only because the emulator models contention on
interior pipes.

Run:  python examples/replicated_web.py
"""

import random

from repro.analysis import Cdf, synthesize_web_trace
from repro.apps import TraceClient, WebServer
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import NodeKind, Topology


def build_topology():
    """Two client clouds behind a 2-transit core; two server sites."""
    topology = Topology("mini-web")
    t0 = topology.add_node(NodeKind.TRANSIT)
    t1 = topology.add_node(NodeKind.TRANSIT)
    topology.add_link(t0.id, t1.id, 50e6, 0.040, queue_limit=100)

    clouds = []
    for transit in (t0, t1):
        stub = topology.add_node(NodeKind.STUB)
        topology.add_link(transit.id, stub.id, 25e6, 0.010)
        cloud = []
        for _ in range(15):
            client = topology.add_node(NodeKind.CLIENT)
            topology.add_link(stub.id, client.id, 1e6, 0.001)
            cloud.append(client.id)
        clouds.append(cloud)

    servers = []
    for transit in (t0, t1):
        stub = topology.add_node(NodeKind.STUB)
        topology.add_link(transit.id, stub.id, 10e6, 0.010)
        server = topology.add_node(NodeKind.CLIENT, role="server")
        topology.add_link(stub.id, server.id, 100e6, 0.001)
        servers.append(server.id)
    return topology, clouds, servers


def run(replicas: int) -> Cdf:
    topology, clouds, server_nodes = build_topology()
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    node_to_vn = {vn.node_id: vn.vn_id for vn in emulation.vns}
    server_vns = [node_to_vn[node] for node in server_nodes]
    for vn in server_vns[:replicas]:
        WebServer(emulation, vn)

    trace = synthesize_web_trace(
        random.Random(3),
        duration_s=40.0,
        rate_low=25,
        rate_high=40,
        size_median_bytes=20_000,
        size_cap_bytes=300_000,
    )
    clients = []
    all_client_nodes = clouds[0] + clouds[1]
    for index, node in enumerate(all_client_nodes):
        # With 2 replicas, the second cloud is redirected to its
        # local server; with 1, everything hits server 0.
        target = server_vns[0]
        if replicas == 2 and node in clouds[1]:
            target = server_vns[1]
        clients.append(
            TraceClient(
                emulation,
                node_to_vn[node],
                target,
                trace.slice_for_client(index, len(all_client_nodes)),
            )
        )
    sim.run(until=100.0)
    return Cdf([lat for c in clients for lat in c.latencies])


def main() -> None:
    for replicas in (1, 2):
        cdf = run(replicas)
        print(f"\n{replicas} replica(s): client-perceived latency")
        print(cdf.table(steps=5, label="latency (s)"))


if __name__ == "__main__":
    main()
