"""The accuracy/scalability knob: distillation (paper Sec. 4.1).

Distills the paper's ring topology three ways — full hop-by-hop,
last-mile (walk-in = 1), and end-to-end — prints the pipe accounting,
and runs the same TCP workload over each to show how abstracting the
interior removes contention effects (and emulation cost).

Run:  python examples/distillation_tradeoff.py
"""

import random

from repro.analysis import summarize
from repro.apps.netperf import TcpStream
from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline, distill
from repro.engine import Simulator
from repro.topology import ring_topology


def build_flows(rng, flows=60):
    """Senders on even VN slots, receivers (with sharing) on odd."""
    pairs = []
    for sender in range(0, 2 * flows, 2):
        receiver = rng.randrange(flows) * 2 + 1
        pairs.append((sender, receiver))
    return pairs


def run(mode, flows, walk_in=1):
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(ring_topology(num_routers=10, vns_per_router=12))
        .distill(mode, walk_in=walk_in)
        .assign(1)
        .bind(4)
        .run(EmulationConfig.reference())
    )
    streams = [TcpStream(emulation, src, dst) for src, dst in flows]
    sim.run(until=2.0)
    for stream in streams:
        stream.mark()
    sim.run(until=8.0)
    rates = [stream.throughput_bps() for stream in streams]
    for stream in streams:
        stream.stop()
    return rates, sim.events_dispatched


def main() -> None:
    topology = ring_topology(num_routers=10, vns_per_router=12)
    print(f"target: {topology}")
    print(f"{'mode':>12} {'pipes':>7} {'preserved':>10} {'mesh':>6}")
    for mode, kwargs in (
        (DistillationMode.HOP_BY_HOP, {}),
        (DistillationMode.WALK_IN, {"walk_in": 1}),
        (DistillationMode.END_TO_END, {}),
    ):
        result = distill(topology, mode, **kwargs)
        print(
            f"{mode.value:>12} {result.total_pipes:>7} "
            f"{result.preserved_links:>10} {result.mesh_links:>6}"
        )

    flows = build_flows(random.Random(2))
    print("\nper-flow goodput under each distillation (60 TCP flows):")
    for mode, label in (
        (DistillationMode.HOP_BY_HOP, "hop-by-hop"),
        (DistillationMode.WALK_IN, "last-mile"),
        (DistillationMode.END_TO_END, "end-to-end"),
    ):
        rates, events = run(mode, flows)
        stats = summarize([rate / 1e3 for rate in rates])
        print(f"  {label:>11}: {stats}  [engine events: {events}]")
    print(
        "\nNote how end-to-end removes interior contention (flows reach "
        "full rate)\nwhile costing far fewer emulation events per packet."
    )


if __name__ == "__main__":
    main()
