"""Ad hoc wireless emulation: broadcast medium + mobility (Sec. 5).

Places radio nodes on a plane, starts random-waypoint mobility, and
runs a periodic beacon-flood protocol while the connectivity graph
changes underneath it. Demonstrates the two wireless extensions the
paper describes: transmissions consume the medium at every node in
range (watch the hidden-terminal collisions), and topology change is
the rule rather than the exception (watch the partition count move).

Run:  python examples/wireless_adhoc.py
"""

import random

from repro.apps import Waypoint, WirelessNetwork
from repro.engine import Simulator


def main() -> None:
    sim = Simulator()
    network = WirelessNetwork(
        sim,
        area_m=400.0,
        range_m=120.0,
        bitrate_bps=2e6,
        num_nodes=16,
        rng=random.Random(4),
    )
    network.start_mobility(Waypoint(speed_low=8.0, speed_high=20.0))

    # Each node floods a small beacon once a second (re-broadcasting
    # first-seen beacons), a building block of ad hoc routing.
    seen = {node.node_id: set() for node in network.nodes}

    def on_receive_for(node):
        def handler(src_id, size, payload):
            beacon_id = payload
            if beacon_id in seen[node.node_id]:
                return
            seen[node.node_id].add(beacon_id)
            node.broadcast(64, payload=beacon_id)
        return handler

    for node in network.nodes:
        node.on_receive = on_receive_for(node)

    counter = [0]

    def beacon():
        origin = network.rng.choice(network.nodes)
        beacon_id = (origin.node_id, counter[0])
        counter[0] += 1
        seen[origin.node_id].add(beacon_id)
        origin.broadcast(64, payload=beacon_id)
        reach = [beacon_id]
        sim.schedule(1.0, beacon)
        sim.schedule(0.9, lambda: report(beacon_id))

    def report(beacon_id):
        reached = sum(1 for ids in seen.values() if beacon_id in ids)
        print(
            f"t={sim.now:6.1f}s beacon {beacon_id} reached {reached:>2}/16 "
            f"partitions={network.partition_count()} "
            f"collisions={network.collision_losses}"
        )

    sim.schedule(1.0, beacon)
    sim.run(until=20.0)
    print(
        f"\ntotals: {network.transmissions} transmissions, "
        f"{network.deliveries} deliveries, "
        f"{network.collision_losses} collision losses"
    )


if __name__ == "__main__":
    main()
