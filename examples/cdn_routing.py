"""DNS-based dynamic request routing (the paper's suggested follow-on
to the replicated-web study).

Two replica sites on opposite sides of a wide-area link serve client
clouds on both sides. A DNS-style redirector answers resolution
queries under three policies — static primary, RTT-closest, and
least-loaded — and the client-perceived latency distribution shows
what each buys. All control traffic (probes, load reports,
resolutions) crosses the emulated network like everything else.

Run:  python examples/cdn_routing.py
"""

from repro.analysis import summarize
from repro.apps.cdn import (
    POLICY_CLOSEST,
    POLICY_LEAST_LOADED,
    POLICY_STATIC,
    CdnClient,
    deploy_cdn,
)
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import NodeKind, Topology


def build():
    topology = Topology("cdn")
    west = topology.add_node(NodeKind.STUB)
    east = topology.add_node(NodeKind.STUB)
    topology.add_link(west.id, east.id, 45e6, 0.045)
    roles = {}
    layout = [
        ("client-w0", west), ("client-w1", west), ("client-w2", west),
        ("client-e0", east), ("client-e1", east), ("client-e2", east),
        ("replica-w", west), ("replica-e", east), ("redirector", west),
    ]
    for name, hub in layout:
        node = topology.add_node(NodeKind.CLIENT, name=name)
        bandwidth = 100e6 if name.startswith("replica") else 5e6
        topology.add_link(hub.id, node.id, bandwidth, 0.002)
        roles[name] = node.id
    return topology, roles


def run(policy: str):
    topology, roles = build()
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    node_to_vn = {vn.node_id: vn.vn_id for vn in emulation.vns}
    vn = {name: node_to_vn[node] for name, node in roles.items()}
    replicas = [vn["replica-w"], vn["replica-e"]]
    redirector, servers, agents = deploy_cdn(
        emulation, vn["redirector"], replicas, policy=policy, ttl_s=2.0
    )
    clients = [
        CdnClient(emulation, vn[name], vn["redirector"])
        for name in roles
        if name.startswith("client")
    ]
    for client in clients:
        client.probe_replicas(replicas)
    for index in range(25):
        for client in clients:
            sim.at(1.0 + index * 0.4, client.request, 40_000)
    sim.run(until=60.0)
    latencies = [lat for client in clients for lat in client.latencies]
    served = {chr(ord('A') + i): server.requests_served for i, server in enumerate(servers)}
    return latencies, served


def main() -> None:
    print(f"{'policy':>14} {'latency summary (s)':<58} replica load")
    for policy in (POLICY_STATIC, POLICY_CLOSEST, POLICY_LEAST_LOADED):
        latencies, served = run(policy)
        print(f"{policy:>14} {str(summarize(latencies)):<58} {served}")
    print(
        "\nstatic sends everyone to one replica (wide-area tail for the far "
        "cloud);\nclosest halves the median; least-loaded spreads load when "
        "proximity ties."
    )


if __name__ == "__main__":
    main()
