"""Quickstart: emulate a small target network and run real TCP over it.

Walks the five ModelNet phases (Create, Distill, Assign, Bind, Run)
for a dumbbell topology, drives two competing TCP flows through the
emulated core, and prints throughput plus the emulator's accuracy
report (per-packet error vs. the ideal emulation, and the
physical/virtual drop taxonomy).

Run:  python examples/quickstart.py
"""

from repro.apps.netperf import TcpStream
from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import dumbbell_topology


def main() -> None:
    # --- Create: a dumbbell, 4 clients per side, 2 Mb/s bottleneck.
    topology = dumbbell_topology(
        clients_per_side=4,
        access_bandwidth_bps=10e6,
        bottleneck_bandwidth_bps=2e6,
        bottleneck_latency_s=0.020,
    )
    print(f"target topology: {topology}")

    # --- Distill / Assign / Bind / Run.
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim, seed=1)
        .create(topology)
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(num_cores=1)
        .bind(num_hosts=2)
        .run(EmulationConfig())  # full fidelity: 100 us ticks, CPU/NIC models
    )
    print(f"emulation: {emulation}")

    # --- Two competing netperf-style TCP streams across the bottleneck.
    left = [vn for vn in emulation.vns if topology.node(vn.node_id).attrs.get("side") == "left"]
    right = [vn for vn in emulation.vns if topology.node(vn.node_id).attrs.get("side") == "right"]
    streams = [
        TcpStream(emulation, left[0].vn_id, right[0].vn_id),
        TcpStream(emulation, left[1].vn_id, right[1].vn_id),
    ]

    sim.run(until=2.0)  # warm up / slow start
    for stream in streams:
        stream.mark()
    sim.run(until=12.0)

    print("\nper-flow goodput over 10 s:")
    for index, stream in enumerate(streams):
        print(f"  flow {index}: {stream.throughput_bps() / 1e6:.3f} Mb/s")
    total = sum(s.throughput_bps() for s in streams)
    print(f"  total : {total / 1e6:.3f} Mb/s (bottleneck: 2 Mb/s)")

    print("\naccuracy report:")
    print(f"  {emulation.accuracy_report()}")


if __name__ == "__main__":
    main()
