"""CFS over RON-like wide-area conditions (paper Sec. 5.1).

Builds the synthetic 12-site RON condition matrix, deploys a Chord
ring with a CFS block store on all sites, stores a 1 MB file striped
across the ring, and downloads it with several prefetch windows —
the experiment behind the paper's Figures 7 and 8.

Run:  python examples/cfs_download.py
"""

from repro.apps.cfs import CfsNetwork
from repro.apps.rondata import ron_topology
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator

FILE_BYTES = 1_000_000


def main() -> None:
    sim = Simulator()
    topology, sites = ron_topology(seed=7)
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    print("RON sites:", ", ".join(site.name for site in sites))

    network = CfsNetwork(emulation, list(range(12)))
    print("\nChord ring (id-space order):")
    ordered = sorted(network.ring.nodes.values(), key=lambda n: n.node_id)
    print("  " + " -> ".join(f"{sites[n.vn_id].name}({n.node_id})" for n in ordered))

    print(f"\ndownloading a {FILE_BYTES // 1000} KB striped file from site "
          f"{sites[1].name}:")
    print(f"{'prefetch':>10} {'speed':>12} {'mean lookup hops':>17}")
    for window_kb in (8, 24, 40, 96, 200):
        file_id = f"demo-{window_kb}"
        placement = network.store_file(file_id, FILE_BYTES)
        client = network.client(1)
        speeds = []
        client.download(
            file_id,
            FILE_BYTES,
            prefetch_bytes=window_kb * 1024,
            on_done=speeds.append,
        )
        sim.run(until=sim.now + 600.0)
        hops = (
            sum(client.lookup_hops) / len(client.lookup_hops)
            if client.lookup_hops
            else 0.0
        )
        speed = speeds[0] / 1024 if speeds else float("nan")
        print(f"{window_kb:>9}K {speed:>10.1f}KB/s {hops:>17.2f}")

    servers = {vn: len(srv.blocks) for vn, srv in network.servers.items()}
    print("\nblocks stored per site:")
    for vn, count in sorted(servers.items()):
        print(f"  {sites[vn].name:>9}: {count}")


if __name__ == "__main__":
    main()
