"""Sec. 4.3 ablation — synthetic cross traffic vs. real competing flows.

The paper offers two ways to subject a service to competing traffic:
run real generators in the VN mix (most accurate, costs emulation
resources) or adjust pipe parameters from an analytical model (cheap,
"introduces an emulation error that grows with the link utilization
level"). This bench quantifies both claims: the foreground TCP
throughput under real CBR competitors vs. the pipe-parameter model at
several background utilizations, and the emulation-resource cost of
each approach.
"""

import pytest

from benchmarks.conftest import full_scale
from repro.apps.netperf import TcpStream, UdpCbrSource, UdpSink
from repro.core import (
    CrossTrafficMatrix,
    CrossTrafficModel,
    DistillationMode,
    EmulationConfig,
    ExperimentPipeline,
)
from repro.engine import Simulator
from repro.topology import NodeKind, Topology

BOTTLENECK_BPS = 10e6


def shared_bottleneck_topology():
    """Foreground pair and background pair share one 10 Mb/s link."""
    topology = Topology()
    r1 = topology.add_node(NodeKind.STUB)
    r2 = topology.add_node(NodeKind.STUB)
    topology.add_link(r1.id, r2.id, BOTTLENECK_BPS, 0.010, queue_limit=100)
    vns = {}
    for name, router in (
        ("fg_src", r1), ("bg_src", r1), ("fg_dst", r2), ("bg_dst", r2),
    ):
        node = topology.add_node(NodeKind.CLIENT, name=name)
        topology.add_link(router.id, node.id, 100e6, 0.001)
        vns[name] = node.id
    return topology, vns


def run_one(utilization: float, synthetic: bool):
    """Foreground TCP goodput with background at the given
    utilization of the bottleneck, injected really or synthetically."""
    topology, names = shared_bottleneck_topology()
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .distill(DistillationMode.HOP_BY_HOP)
        .run(EmulationConfig.reference())
    )
    node_to_vn = {vn.node_id: vn.vn_id for vn in emulation.vns}
    vn = {name: node_to_vn[node] for name, node in names.items()}
    background_bps = utilization * BOTTLENECK_BPS

    source = None
    if background_bps > 0:
        if synthetic:
            model = CrossTrafficModel(emulation)
            matrix = CrossTrafficMatrix()
            matrix.set_demand(vn["bg_src"], vn["bg_dst"], background_bps)
            model.apply(matrix)
        else:
            UdpSink(emulation.vn(vn["bg_dst"]))
            source = UdpCbrSource(
                emulation.vn(vn["bg_src"]), vn["bg_dst"],
                rate_bps=background_bps,
            )

    stream = TcpStream(emulation, vn["fg_src"], vn["fg_dst"])
    sim.run(until=2.0)
    stream.mark()
    sim.run(until=8.0)
    goodput = stream.throughput_bps()
    stream.stop()
    if source is not None:
        source.stop()
    return goodput, sim.events_dispatched


def test_ablation_cross_traffic_fidelity(benchmark, sink):
    utilizations = [0.0, 0.2, 0.4, 0.6, 0.8]

    def run_all():
        rows = []
        for utilization in utilizations:
            real, real_events = run_one(utilization, synthetic=False)
            model, model_events = run_one(utilization, synthetic=True)
            rows.append((utilization, real, model, real_events, model_events))
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    sink.row("Ablation: synthetic vs real cross traffic (foreground TCP goodput)")
    sink.row(
        f"{'util':>5} {'real(Mb/s)':>11} {'model(Mb/s)':>12} "
        f"{'err%':>6} {'real_events':>12} {'model_events':>13}"
    )
    errors = {}
    for utilization, real, model, real_events, model_events in rows:
        error = abs(model - real) / real if real else 0.0
        errors[utilization] = error
        sink.row(
            f"{utilization:>5.1f} {real/1e6:>11.2f} {model/1e6:>12.2f} "
            f"{error*100:>5.1f}% {real_events:>12} {model_events:>13}"
        )

    by_util = {u: (real, model, re, me) for u, real, model, re, me in rows}

    # No background: both identical (same code path).
    real0, model0, _, _ = by_util[0.0]
    assert model0 == pytest.approx(real0, rel=0.02)

    # Both approaches take bandwidth away monotonically.
    for series_index in (1, 2):
        values = [row[series_index] for row in rows]
        for earlier, later in zip(values, values[1:]):
            assert later < earlier * 1.05

    # The paper's two claims:
    # (1) the model tracks real cross traffic well at low utilization...
    assert errors[0.2] < 0.25
    # ...with error growing as utilization rises (unresponsive
    # background vs TCP that would have shared).
    assert errors[0.8] > errors[0.2]

    # (2) the model is far cheaper: no background packets at all.
    _real, _model, real_events, model_events = by_util[0.8]
    assert model_events < 0.6 * real_events
