"""Figure 8 — CDF of CFS download speed at several prefetch windows.

The paper plots, for prefetch windows of 8, 24, and 40 KB, the CDF of
1 MB download speeds over many (client, file) combinations, for both
CFS-on-RON and CFS-on-ModelNet. Shape targets: the three CDFs are
cleanly ordered (larger windows shift the whole distribution right),
8 KB downloads cluster below ~50 KB/s, and 40 KB downloads mostly
exceed 60 KB/s.
"""

import pytest

from benchmarks.cfs_common import FILE_BYTES, build_ron_emulation, cfs_download_speed
from benchmarks.conftest import full_scale
from repro.analysis import Cdf
from repro.apps.cfs import CfsNetwork

WINDOWS_KB = (8, 24, 40)


def run_downloads():
    sim, emulation = build_ron_emulation(num_hosts=12)
    network = CfsNetwork(emulation, list(range(12)))
    clients = list(range(12)) if full_scale() else [0, 1, 3, 5, 6, 7, 9, 10]
    results = {window: [] for window in WINDOWS_KB}
    for window_kb in WINDOWS_KB:
        for client in clients:
            file_id = f"cdf-{window_kb}-{client}"
            network.store_file(file_id, FILE_BYTES)
            speed = cfs_download_speed(
                sim, network, client, file_id, window_kb * 1024
            )
            if speed is not None:
                results[window_kb].append(speed)
    return results


def test_fig8_cfs_cdf(benchmark, sink):
    results = benchmark.pedantic(run_downloads, rounds=1, iterations=1)
    sink.row("Figure 8: CDF of download speed by prefetch window (KB/s)")
    quantiles = (0.1, 0.25, 0.5, 0.75, 0.9)
    sink.row(f"{'window':>7} " + " ".join(f"p{int(q*100):>3}" for q in quantiles))
    cdfs = {}
    for window_kb, speeds in results.items():
        cdfs[window_kb] = Cdf(speeds)
        sink.row(
            f"{window_kb:>6}K "
            + " ".join(f"{cdfs[window_kb].quantile(q)/1024:>4.0f}" for q in quantiles)
        )

    for window_kb in WINDOWS_KB:
        assert len(results[window_kb]) >= 6

    # Stochastic ordering: bigger windows dominate at every quantile.
    for q in (0.25, 0.5, 0.75):
        assert cdfs[8].quantile(q) < cdfs[24].quantile(q) < cdfs[40].quantile(q)

    # Magnitudes in the CFS paper's bands.
    assert cdfs[8].quantile(0.9) < 60 * 1024
    assert cdfs[40].quantile(0.5) > 60 * 1024
    assert cdfs[40].quantile(0.9) < 350 * 1024
