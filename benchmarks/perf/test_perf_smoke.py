"""Smoke test for the `repro-net bench` perf harness.

Not a performance assertion — CI boxes are too noisy for that. This
verifies the harness *contract*: every scenario emits a complete
``repro-bench/1`` record, same-seed runs dispatch identical event
streams, and ``--compare`` classifies results sensibly. The heavier
scenarios (``dumbbell_netperf``, ``capacity_sweep``) are exercised by
the CI ``bench-smoke`` job; here the ~28k-event sanitizer double-run
keeps the suite fast while still driving the full pipeline.
"""

import json
from dataclasses import replace

import pytest

from repro.bench import (
    BENCH_SCHEMA,
    bench_filename,
    compare_results,
    load_result,
    run_scenario,
    write_result,
)

REQUIRED_FIELDS = [
    "schema",
    "name",
    "profile",
    "seed",
    "params",
    "wall_s",
    "events",
    "events_per_s",
    "virtual_pkts",
    "virtual_pkts_per_s",
    "virtual_time_s",
    "peak_rss_bytes",
    "phases",
    "digest",
    "extras",
]


@pytest.fixture(scope="module")
def smoke_result():
    return run_scenario("sanitize_smoke", profile="short", seed=1)


def test_bench_record_has_full_schema(smoke_result):
    record = json.loads(smoke_result.to_json())
    assert record["schema"] == BENCH_SCHEMA
    for field in REQUIRED_FIELDS:
        assert field in record, f"missing BENCH field {field!r}"
    assert record["events"] > 0
    assert record["wall_s"] > 0
    assert record["events_per_s"] == pytest.approx(
        record["events"] / record["wall_s"]
    )
    assert record["peak_rss_bytes"] > 0
    assert "run_s" in record["phases"]


def test_same_seed_is_deterministic(smoke_result):
    # The scenario itself double-runs and raises on digest mismatch;
    # here we re-run the whole scenario and compare across processes'
    # worth of state (fresh emulation, warmed descriptor pool).
    again = run_scenario("sanitize_smoke", profile="short", seed=1)
    assert again.digest == smoke_result.digest
    assert again.events == smoke_result.events
    assert again.virtual_pkts == smoke_result.virtual_pkts


def test_write_and_load_round_trip(tmp_path, smoke_result):
    path = write_result(smoke_result, str(tmp_path))
    assert path.endswith(bench_filename("sanitize_smoke"))
    loaded = load_result(path)
    assert loaded.name == "sanitize_smoke"
    assert loaded.events == smoke_result.events
    assert loaded.digest == smoke_result.digest


def test_compare_flags_only_real_changes(smoke_result):
    findings = compare_results(smoke_result, smoke_result, threshold=0.10)
    assert not any(f.is_regression for f in findings)

    slower = replace(
        smoke_result, events_per_s=smoke_result.events_per_s / 2
    )
    findings = compare_results(smoke_result, slower, threshold=0.10)
    assert any(f.kind == "regression" for f in findings)

    diverged = replace(smoke_result, events=smoke_result.events + 1)
    findings = compare_results(smoke_result, diverged, threshold=0.10)
    assert any(f.kind == "behavior-change" for f in findings)
