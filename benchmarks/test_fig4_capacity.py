"""Figure 4 — capacity of a single ModelNet core.

The paper: packets/sec forwarded vs. number of 10 Mb/s TCP flows,
one curve per emulated hop count (1, 2, 4, 8, 12). Shape targets:

* linear scaling with offered load below saturation;
* 1-hop saturation ~120 kpps, NIC-bound, CPU ~50% utilized;
* >4 hops becomes CPU-bound (8 hops ~90 kpps in the paper);
* saturation appears as *physical* drops, throttling the TCP flows.
"""

import pytest

from benchmarks.capacity import measure_chain_capacity
from benchmarks.conftest import full_scale


def flow_points():
    return [24, 48, 96, 120] if full_scale() else [24, 96, 120]


def hop_points():
    return [1, 2, 4, 8, 12] if full_scale() else [1, 2, 8, 12]


def run_curves():
    results = {}
    for hops in hop_points():
        for flows in flow_points():
            results[(hops, flows)] = measure_chain_capacity(
                flows, hops, warm_s=0.5, measure_s=1.0
            )
    return results


def test_fig4_capacity(benchmark, sink):
    results = benchmark.pedantic(run_curves, rounds=1, iterations=1)
    sink.row("Figure 4: single-core capacity (pkts/sec)")
    sink.row(f"{'hops':>5} {'flows':>6} {'kpps':>8} {'cpu%':>6} {'phys_drops':>11}")
    for (hops, flows), r in sorted(results.items()):
        sink.row(
            f"{hops:>5} {flows:>6} {r.pps/1e3:>8.1f} "
            f"{r.cpu_utilization*100:>5.0f}% {r.physical_drops:>11}"
        )
        sink.metric(f"pps[{hops}h,{flows}f]", r.pps)
        sink.metric(f"cpu[{hops}h,{flows}f]", r.cpu_utilization)
    # Full manifest of the saturated 1-hop point for cross-commit diffs.
    sink.attach_report(results[(1, flow_points()[-1])].report)

    flows_lo, flows_hi = flow_points()[0], flow_points()[-1]

    # Below saturation: linear scaling with offered load (24 flows at
    # 10 Mb/s each, ~1250 pkt/s data + delayed ACKs per flow).
    low = results[(1, flows_lo)]
    assert low.pps == pytest.approx(flows_lo * 1250, rel=0.15)
    assert low.physical_drops == 0

    # 1-hop saturation: NIC-bound near 120 kpps with CPU around 50%.
    sat1 = results[(1, flows_hi)]
    assert 100e3 < sat1.pps < 130e3
    assert sat1.cpu_utilization < 0.65
    assert sat1.physical_drops > 0

    # 8-hop saturation: CPU-bound, lower than the 1-hop plateau.
    sat8 = results[(8, flows_hi)]
    assert sat8.pps < sat1.pps * 0.85
    assert sat8.cpu_utilization > 0.75

    # More hops cost more: capacity decreases monotonically in hops
    # at saturation (within noise).
    plateau = [results[(h, flows_hi)].pps for h in hop_points()]
    assert plateau[0] > plateau[-1]
    # 12 hops is worse than 8 (CPU-bound regime).
    assert results[(12, flows_hi)].pps <= results[(8, flows_hi)].pps * 1.05
