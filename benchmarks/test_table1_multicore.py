"""Table 1 — multi-core scalability vs. cross-core communication.

The paper (4 cores, 1120 VNs on a star of 10 Mb/s pipes):

    cross-core traffic   0%     25%    50%    75%    100%
    throughput (kpps)    462.5  404.5  276.3  219.3  155.8

Shape targets: 0% cross-core delivers ~4x the single-core 2-hop
plateau, and throughput degrades monotonically by roughly 3x from 0%
to 100% cross-core traffic.
"""

import pytest

from benchmarks.capacity import measure_chain_capacity, measure_multicore_throughput
from benchmarks.conftest import full_scale


def run_table():
    if full_scale():
        num_vns, pipe_bps = 1120, 10e6  # the paper's exact setup
    else:
        num_vns, pipe_bps = 280, 40e6  # same offered pkts/sec, 1/4 VNs
    fractions = [0.0, 0.25, 0.5, 0.75, 1.0]
    rows = []
    for fraction in fractions:
        rows.append(
            measure_multicore_throughput(
                4,
                fraction,
                num_vns=num_vns,
                pipe_bps=pipe_bps,
                warm_s=0.5,
                measure_s=0.5,
            )
        )
    single = measure_chain_capacity(120, hops=2, warm_s=0.5, measure_s=0.5)
    return rows, single


def test_table1_multicore(benchmark, sink):
    rows, single = benchmark.pedantic(run_table, rounds=1, iterations=1)
    sink.row("Table 1: 4-core throughput vs % cross-core traffic")
    sink.row(f"{'cross%':>7} {'kpps':>8} {'tunnels':>9}")
    for row in rows:
        sink.row(
            f"{row.cross_fraction*100:>6.0f}% {row.pps/1e3:>8.1f} {row.tunnels:>9}"
        )
    sink.row(f"single-core 2-hop reference: {single.pps/1e3:.1f} kpps")

    by_fraction = {row.cross_fraction: row for row in rows}
    # No tunneling at 0%, plenty at 100%.
    assert by_fraction[0.0].tunnels == 0
    assert by_fraction[1.0].tunnels > 0

    # Monotone degradation with cross-core traffic.
    pps = [row.pps for row in rows]
    for earlier, later in zip(pps, pps[1:]):
        assert later < earlier * 1.05

    # ~3x degradation from 0% to 100% (paper: 462.5 -> 155.8).
    ratio = by_fraction[0.0].pps / by_fraction[1.0].pps
    assert 1.8 < ratio < 5.0

    # 0% cross-core is ~4x a single core at the same per-path hop
    # count (allowing generous tolerance for the scaled-down run).
    speedup = by_fraction[0.0].pps / single.pps
    assert speedup > 2.0
