"""Figure 12 — ACDC cost and delay under dynamic network changes.

The paper: a 600-node GT-ITM transit-stub topology (transit-transit
155 Mb/s cost 20-40, transit-stub 45 Mb/s cost 10-20, stub-stub
100 Mb/s cost 1-5); 120 random members form an ACDC overlay with a
delay target. After 500 s of stabilization, ModelNet raises the
delay of 25% of randomly chosen links by 0-25% every 25 s until
t=1500, then conditions subside. Plotted vs. time: overlay cost
relative to an (offline) minimum-cost spanning tree, and the
worst-case overlay delay.

Shape targets:

* the overlay drives its cost ratio down during stabilization;
* during perturbation the overlay adapts — max delay stays bounded
  near the target (sometimes sacrificing cost);
* after conditions subside the overlay reduces cost again.
"""

import random

import pytest

from benchmarks.conftest import full_scale
from repro.apps import AcdcOverlay
from repro.core import (
    EmulationConfig,
    ExperimentPipeline,
    FaultInjector,
    LinkPerturbation,
)
from repro.engine import Simulator
from repro.topology import LinkKind, TransitStubSpec, transit_stub_topology
from repro.topology.annotate import LinkClassParams


def acdc_link_params():
    """The ACDC experiment's link classes (paper Sec. 5.3), with
    latencies giving wide-area-scale tree delays."""
    return {
        LinkKind.TRANSIT_TRANSIT: LinkClassParams(
            bandwidth_bps=(155e6, 155e6), latency_s=(0.080, 0.120), cost=(20, 40)
        ),
        LinkKind.STUB_TRANSIT: LinkClassParams(
            bandwidth_bps=(45e6, 45e6), latency_s=(0.030, 0.050), cost=(10, 20)
        ),
        LinkKind.STUB_STUB: LinkClassParams(
            bandwidth_bps=(100e6, 100e6), latency_s=(0.015, 0.025), cost=(1, 5)
        ),
        LinkKind.CLIENT_STUB: LinkClassParams(
            bandwidth_bps=(100e6, 100e6), latency_s=(0.005, 0.010), cost=(1, 1)
        ),
    }


def run_experiment():
    if full_scale():
        spec = TransitStubSpec(
            transit_nodes_per_domain=6,
            stub_domains_per_transit_node=5,
            stub_nodes_per_domain=10,
            link_params=acdc_link_params(),
        )  # 606 nodes
        members, horizon = 120, 3000.0
        perturb_window = (500.0, 1500.0)
    else:
        spec = TransitStubSpec(
            transit_nodes_per_domain=4,
            stub_domains_per_transit_node=4,
            stub_nodes_per_domain=6,
            link_params=acdc_link_params(),
        )  # ~200 nodes
        members, horizon = 60, 1500.0
        perturb_window = (300.0, 800.0)

    rng = random.Random(12)
    topology = transit_stub_topology(spec, rng)
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .run(EmulationConfig.reference())
    )
    member_vns = sorted(rng.sample(range(emulation.num_vns), members))
    overlay = AcdcOverlay(emulation, member_vns, delay_target_s=1.0)
    # Like the paper, pick the target so the best possible (SPT)
    # delay sits close below it — that's what makes the goal hard.
    overlay.delay_target_s = overlay.spt_delay() / 0.8

    injector = FaultInjector(emulation)
    injector.start_perturbation(
        LinkPerturbation(period_s=25.0, link_fraction=0.25, latency_scale=(1.0, 1.25)),
        start_s=perturb_window[0],
        stop_s=perturb_window[1],
    )

    samples = []

    def sample():
        samples.append(
            {
                "t": sim.now,
                "cost_ratio": overlay.tree_cost() / overlay.mst_cost(),
                "max_delay": overlay.actual_max_delay(),
            }
        )

    for t in range(0, int(horizon) + 1, 25):
        sim.at(float(t), sample)
    overlay.start()
    sim.run(until=horizon + 1)
    overlay.stop()
    return samples, overlay, perturb_window


def test_fig12_acdc(benchmark, sink):
    samples, overlay, (p_start, p_stop) = benchmark.pedantic(
        run_experiment, rounds=1, iterations=1
    )
    sink.row("Figure 12: ACDC cost (vs MST) and max delay over time")
    sink.row(f"delay target: {overlay.delay_target_s:.2f}s  SPT delay: {overlay.spt_delay():.2f}s")
    sink.row(f"{'t(s)':>6} {'cost/MST':>9} {'max_delay(s)':>13}")
    for sample in samples[:: max(1, len(samples) // 30)]:
        sink.row(
            f"{sample['t']:>6.0f} {sample['cost_ratio']:>9.2f} "
            f"{sample['max_delay']:>13.2f}"
        )

    def window(lo, hi):
        return [s for s in samples if lo <= s["t"] < hi]

    initial = samples[0]
    settled = window(p_start - 100, p_start)
    perturbed = window(p_start + 50, p_stop)
    recovered = window(p_stop + (p_stop - p_start) * 0.4, 1e12)

    # Stabilization reduces cost from the random join point.
    settled_cost = min(s["cost_ratio"] for s in settled)
    assert settled_cost < initial["cost_ratio"]
    assert settled_cost < 2.5  # in the vicinity of MST, as in the figure

    # The overlay keeps worst-case delay bounded near the target
    # throughout the perturbation (it adapts rather than blowing up).
    target = overlay.delay_target_s
    violations = [s for s in perturbed if s["max_delay"] > 1.6 * target]
    assert len(violations) < 0.4 * len(perturbed)

    # After conditions subside, cost comes back down to (or below)
    # the stressed level.
    stressed_cost = sum(s["cost_ratio"] for s in perturbed) / len(perturbed)
    recovered_cost = min(s["cost_ratio"] for s in recovered)
    assert recovered_cost <= stressed_cost * 1.1

    # The overlay meets its delay target in steady state.
    final = samples[-1]
    assert final["max_delay"] < 1.6 * target
