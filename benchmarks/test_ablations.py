"""Ablations of ModelNet's design choices.

The paper motivates several mechanisms without always isolating them;
these benches do the isolation:

* **payload caching** [22] — leaving packet bodies at the entry core
  and tunneling 64 B descriptors vs. tunneling full packets;
* **tick granularity** — emulation error vs. the scheduler clock,
  with and without packet-debt correction;
* **perfect vs. emulated routing** — the delivery blackout a failure
  causes once routing-protocol convergence is emulated (Sec. 2.3);
* **hierarchical vs. flat routing state** — storage vs. path stretch
  (Sec. 2.2).
"""

import random

import pytest

from benchmarks.capacity import measure_multicore_throughput
from repro.apps.netperf import TcpStream
from repro.core import (
    DistillationMode,
    EmulationConfig,
    ExperimentPipeline,
)
from repro.core.emulator import Emulation
from repro.core.routing_emulation import DistanceVectorRouting
from repro.engine import Simulator
from repro.hardware.calibration import CoreSpec
from repro.routing import CachedRouting, route_latency
from repro.routing.hierarchical import HierarchicalRouting
from repro.topology import (
    NodeKind,
    Topology,
    TransitStubSpec,
    chain_topology,
    transit_stub_topology,
)


# ----------------------------------------------------------------------
# Payload caching
# ----------------------------------------------------------------------

def test_ablation_payload_caching(benchmark, sink):
    """At 100% cross-core traffic, payload caching spares the core
    fabric the packet bodies; disabling it costs throughput."""

    def run():
        results = {}
        for caching in (True, False):
            import benchmarks.capacity as capacity_mod

            # measure_multicore_throughput builds its own config; run
            # a variant via monkey-free parameterization: temporarily
            # patch EmulationConfig default through the function's
            # Emulation call by wrapping.
            result = _multicore_with_caching(caching)
            results[caching] = result
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sink.row("Ablation: payload caching at 100% cross-core traffic")
    for caching, pps in results.items():
        sink.row(f"  payload_caching={caching}: {pps/1e3:.1f} kpps")
    # Tunneling full packet bodies burns core NIC bandwidth: caching
    # must win clearly.
    assert results[True] > results[False] * 1.1


def _multicore_with_caching(caching: bool) -> float:
    from repro.core.assign import assign_by_vn_groups
    from repro.core.bind import Binding
    from repro.hardware.calibration import GIGABIT_EDGE_SPEC
    from repro.topology import star_topology

    num_vns, num_cores, num_hosts = 280, 4, 20
    sim = Simulator()
    topology = star_topology(num_vns, bandwidth_bps=40e6, latency_s=0.005)
    clients = sorted(node.id for node in topology.clients())
    per_core = num_vns // num_cores
    groups = [
        clients[c * per_core : (c + 1) * per_core] for c in range(num_cores)
    ]
    binding = Binding(
        clients,
        [vn // (num_vns // num_hosts) for vn in range(num_vns)],
        [h // (num_hosts // num_cores) for h in range(num_hosts)],
    )
    emulation = Emulation(
        sim,
        topology,
        EmulationConfig(
            num_cores=num_cores,
            num_hosts=num_hosts,
            edge_spec=GIGABIT_EDGE_SPEC,
            payload_caching=caching,
        ),
        assignment=assign_by_vn_groups(topology, groups),
        binding=binding,
    )
    senders_per_core = per_core // 2
    streams = []
    for core in range(num_cores):
        base = core * per_core
        for offset in range(senders_per_core):
            receiver = ((core + 1) % num_cores) * per_core + senders_per_core + offset
            streams.append(TcpStream(emulation, base + offset, receiver))
    sim.run(until=0.5)
    emulation.monitor.begin_window(sim.now)
    sim.run(until=1.0)
    pps = emulation.monitor.window_pps(sim.now)
    for stream in streams:
        stream.stop()
    return pps


# ----------------------------------------------------------------------
# Tick granularity
# ----------------------------------------------------------------------

def test_ablation_tick_granularity(benchmark, sink):
    """Per-packet error scales with the scheduler tick; debt handling
    removes the per-hop accumulation at any tick."""

    def run():
        rows = []
        for tick in (5e-5, 1e-4, 5e-4):
            for debt in (False, True):
                sim = Simulator()
                config = EmulationConfig(debt_handling=debt)
                config.core_spec = CoreSpec(tick_s=tick)
                emulation = (
                    ExperimentPipeline(sim)
                    .create(chain_topology(2, hops=6, bandwidth_bps=10e6, latency_s=0.010))
                    .distill(DistillationMode.HOP_BY_HOP)
                    .assign(1)
                    .bind(2)
                    .run(config)
                )
                streams = [TcpStream(emulation, 2 * f, 2 * f + 1) for f in range(2)]
                sim.run(until=1.5)
                for stream in streams:
                    stream.stop()
                report = emulation.accuracy_report()
                rows.append((tick, debt, report.max_error_s, report.mean_error_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    sink.row("Ablation: accuracy vs scheduler tick (6-hop paths)")
    sink.row(f"{'tick(us)':>9} {'debt':>5} {'max_err(us)':>12} {'mean(us)':>9}")
    by_key = {}
    for tick, debt, max_error, mean_error in rows:
        by_key[(tick, debt)] = max_error
        sink.row(
            f"{tick*1e6:>9.0f} {str(debt):>5} {max_error*1e6:>12.1f} "
            f"{mean_error*1e6:>9.1f}"
        )
    for tick in (5e-5, 1e-4, 5e-4):
        # Without debt: up to ~1 tick per hop; with: ~1 tick total.
        assert by_key[(tick, False)] <= 6 * tick * 1.05
        assert by_key[(tick, True)] <= tick * 1.05
    # Error scales with the tick.
    assert by_key[(5e-4, False)] > by_key[(5e-5, False)] * 3


# ----------------------------------------------------------------------
# Perfect vs emulated routing
# ----------------------------------------------------------------------

def _failure_topology():
    topology = Topology()
    c0 = topology.add_node(NodeKind.CLIENT)
    r1 = topology.add_node(NodeKind.STUB)
    r2 = topology.add_node(NodeKind.STUB)
    r3 = topology.add_node(NodeKind.STUB)
    c4 = topology.add_node(NodeKind.CLIENT)
    topology.add_link(c0.id, r1.id, 10e6, 0.002)
    topology.add_link(r1.id, r2.id, 10e6, 0.002)
    topology.add_link(r2.id, c4.id, 10e6, 0.002)
    topology.add_link(r1.id, r3.id, 10e6, 0.010)
    topology.add_link(r3.id, c4.id, 10e6, 0.010)
    return topology


def test_ablation_routing_protocol(benchmark, sink):
    """The perfect-routing assumption hides failure blackouts; the
    emulated distance-vector protocol exposes them."""

    def run():
        outcomes = {}
        for label in ("perfect", "distance-vector"):
            topology = _failure_topology()
            sim = Simulator()
            protocol = None
            if label == "distance-vector":
                protocol = DistanceVectorRouting(
                    sim, topology, processing_delay_s=0.05
                )
            emulation = Emulation(
                sim, topology, EmulationConfig.reference(), routing=protocol
            )
            received = []
            emulation.vn(1).udp_socket(
                port=9, on_receive=lambda *a: received.append(sim.now)
            )
            sender = emulation.vn(0).udp_socket()
            # 100 pps probe stream; fail the short path at t=1.
            for index in range(400):
                sim.at(index * 0.01, sender.send_to, 1, 9, 200)
            link = topology.link_between(1, 2)
            if protocol is None:
                sim.at(1.0, emulation.set_link_up, link.id, False)
            else:
                sim.at(1.0, protocol.link_failed, link)
            sim.run(until=5.0)
            # Blackout: longest inter-arrival gap around the failure.
            gaps = [
                later - earlier
                for earlier, later in zip(received, received[1:])
                if 0.9 < earlier < 2.0
            ]
            outcomes[label] = (len(received), max(gaps) if gaps else 0.0)
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    sink.row("Ablation: failure blackout, perfect vs emulated routing")
    for label, (delivered, gap) in outcomes.items():
        sink.row(f"  {label:>15}: delivered={delivered} worst_gap={gap*1e3:.0f}ms")
    perfect_gap = outcomes["perfect"][1]
    dv_gap = outcomes["distance-vector"][1]
    # Perfect routing: no blackout beyond a couple of probe periods.
    assert perfect_gap < 0.05
    # DV routing: a real convergence blackout, then recovery.
    assert dv_gap > 0.05
    assert outcomes["distance-vector"][0] > 300  # traffic does recover


# ----------------------------------------------------------------------
# Hierarchical routing state
# ----------------------------------------------------------------------

def test_ablation_hierarchical_tables(benchmark, sink):
    """Sec. 2.2's storage/stretch trade, quantified."""

    def run():
        spec = TransitStubSpec(
            transit_nodes_per_domain=4,
            stub_domains_per_transit_node=3,
            stub_nodes_per_domain=4,
            clients_per_stub_node=2,
        )
        topology = transit_stub_topology(spec, random.Random(8))
        hierarchical = HierarchicalRouting(topology)
        flat = CachedRouting(topology)
        clients = sorted(n.id for n in topology.clients())
        rng = random.Random(9)
        stretches = []
        for _ in range(200):
            src, dst = rng.sample(clients, 2)
            h = hierarchical.route(src, dst)
            f = flat.route(src, dst)
            stretches.append(route_latency(h) / max(1e-12, route_latency(f)))
        return topology, hierarchical, stretches

    topology, hierarchical, stretches = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    mean_stretch = sum(stretches) / len(stretches)
    saving = 1 - hierarchical.table_entries() / hierarchical.flat_matrix_entries()
    sink.row("Ablation: hierarchical vs flat routing state")
    sink.row(f"  clients: {len(topology.clients())}, clusters: {hierarchical.num_clusters}")
    sink.row(
        f"  entries: {hierarchical.table_entries()} vs "
        f"{hierarchical.flat_matrix_entries()} ({saving*100:.0f}% saved)"
    )
    sink.row(f"  latency stretch: mean {mean_stretch:.3f}, max {max(stretches):.3f}")
    assert saving > 0.4
    assert mean_stretch < 1.4
    assert all(stretch >= 1.0 - 1e-9 for stretch in stretches)
