"""Assignment ablation — how much partitioning quality matters.

Table 1 shows cross-core traffic dominating multi-core scalability;
the paper's defense is the greedy k-clusters assignment ("properly
partitioning the topology to minimize the number of inter-core packet
crossings") plus, prospectively, dynamic reassignment. This bench
quantifies the chain: random assignment vs. greedy k-clusters on the
offline crossing metric, and the additional win from online dynamic
reassignment under a skewed traffic pattern the static heuristic
cannot anticipate.
"""

import random

import pytest

from repro.apps.netperf import TcpStream
from repro.core import EmulationConfig
from repro.core.assign import (
    Assignment,
    cross_core_hops,
    greedy_k_clusters,
)
from repro.core.bind import Binding
from repro.core.emulator import Emulation
from repro.core.reassign import DynamicReassigner
from repro.engine import Simulator
from repro.routing import CachedRouting
from repro.topology import TransitStubSpec, star_topology, transit_stub_topology


def test_ablation_greedy_vs_random_assignment(benchmark, sink):
    """Offline: fraction of consecutive pipe pairs crossing cores."""

    def run():
        spec = TransitStubSpec(
            transit_nodes_per_domain=4,
            stub_domains_per_transit_node=3,
            stub_nodes_per_domain=4,
            clients_per_stub_node=2,
        )
        topology = transit_stub_topology(spec, random.Random(5))
        routing = CachedRouting(topology)
        clients = sorted(n.id for n in topology.clients())
        rng = random.Random(6)
        routes = [routing.route(*rng.sample(clients, 2)) for _ in range(300)]

        results = {}
        for cores in (2, 4, 8):
            greedy = greedy_k_clusters(topology, cores, random.Random(7))
            shuffler = random.Random(8)
            random_assignment = Assignment(
                cores,
                {
                    link_id: shuffler.randrange(cores)
                    for link_id in topology.links
                },
            )
            results[cores] = (
                cross_core_hops(topology, greedy, routes),
                cross_core_hops(topology, random_assignment, routes),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    sink.row("Ablation: crossing fraction, greedy k-clusters vs random")
    sink.row(f"{'cores':>6} {'greedy':>8} {'random':>8}")
    for cores, (greedy_frac, random_frac) in sorted(results.items()):
        sink.row(f"{cores:>6} {greedy_frac:>8.3f} {random_frac:>8.3f}")
    for cores, (greedy_frac, random_frac) in results.items():
        # Random crossings approach 1 - 1/k; greedy stays well below.
        assert random_frac > (1 - 1 / cores) * 0.7
        assert greedy_frac < 0.75 * random_frac


def test_ablation_dynamic_reassignment_online(benchmark, sink):
    """Online: a pessimal static assignment self-corrects."""

    def run():
        topology = star_topology(8, bandwidth_bps=10e6, latency_s=0.005)
        clients = sorted(n.id for n in topology.clients())
        link_to_core = {}
        for link in topology.links.values():
            client_end = link.a if link.a in clients else link.b
            link_to_core[link.id] = clients.index(client_end) % 2
        sim = Simulator()
        emulation = Emulation(
            sim,
            topology,
            EmulationConfig(num_cores=2, num_hosts=2),
            assignment=Assignment(2, link_to_core),
            binding=Binding(clients, [vn % 2 for vn in range(8)], [0, 1]),
        )
        reassigner = DynamicReassigner(emulation, period_s=1.0)
        streams = [TcpStream(emulation, 2 * f, 2 * f + 1) for f in range(4)]
        sim.run(until=1.0)
        early = emulation.monitor.tunnels
        reassigner.start()
        sim.run(until=6.0)
        mark = emulation.monitor.tunnels
        sim.run(until=8.0)
        late_rate = (emulation.monitor.tunnels - mark) / 2.0
        for stream in streams:
            stream.stop()
        return early / 1.0, late_rate, reassigner.moves

    early_rate, late_rate, moves = benchmark.pedantic(run, rounds=1, iterations=1)
    sink.row("Ablation: dynamic reassignment under skewed traffic")
    sink.row(f"  tunnels/s before: {early_rate:.0f}   after: {late_rate:.0f}")
    sink.row(f"  pipes migrated: {moves}")
    assert moves > 0
    assert late_rate < 0.2 * early_rate
