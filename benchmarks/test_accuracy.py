"""Sec. 3.1 — baseline per-packet emulation accuracy.

The paper: each packet-hop is emulated to within the hardware timer
granularity (100 us); a 10-hop path sees at most ~1 ms of error; the
proposed packet-debt handling reduces error to one tick end-to-end.
"""

import pytest

from repro.apps.netperf import TcpStream
from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import chain_topology

TICK = 1e-4


def run_accuracy(hops: int, debt_handling: bool):
    sim = Simulator()
    config = EmulationConfig(debt_handling=debt_handling)
    emulation = (
        ExperimentPipeline(sim)
        .create(chain_topology(4, hops=hops, bandwidth_bps=10e6, latency_s=0.010))
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(1)
        .bind(4)
        .run(config)
    )
    streams = [TcpStream(emulation, 2 * f, 2 * f + 1) for f in range(4)]
    sim.run(until=2.0)
    for stream in streams:
        stream.stop()
    return emulation.accuracy_report()


@pytest.mark.parametrize("hops", [1, 5, 10])
def test_error_within_tick_per_hop(benchmark, sink, hops):
    report = benchmark.pedantic(
        run_accuracy, args=(hops, False), rounds=1, iterations=1
    )
    sink.row(
        f"hops={hops:2d} debt=off  max_err={report.max_error_s*1e6:7.1f}us "
        f"mean={report.mean_error_s*1e6:6.1f}us p99={report.p99_error_s*1e6:6.1f}us "
        f"({report.packets_delivered} pkts)"
    )
    # Paper: worst case one timer tick per hop (1 ms over 10 hops).
    assert report.max_error_s <= hops * TICK * 1.05
    assert report.max_error_s >= 0.0
    assert report.packets_delivered > 1000


@pytest.mark.parametrize("hops", [5, 10])
def test_debt_handling_bounds_total_error(benchmark, sink, hops):
    report = benchmark.pedantic(
        run_accuracy, args=(hops, True), rounds=1, iterations=1
    )
    sink.row(
        f"hops={hops:2d} debt=on   max_err={report.max_error_s*1e6:7.1f}us "
        f"mean={report.mean_error_s*1e6:6.1f}us"
    )
    # "per-packet emulation accuracy can be reduced to 100 us in all
    # cases" — one tick end to end, independent of hop count.
    assert report.max_error_s <= TICK * 1.05


def test_reference_mode_is_exact(benchmark, sink):
    def run():
        sim = Simulator()
        emulation = (
            ExperimentPipeline(sim)
            .create(chain_topology(2, hops=6, bandwidth_bps=10e6, latency_s=0.010))
            .run(EmulationConfig.reference())
        )
        streams = [TcpStream(emulation, 2 * f, 2 * f + 1) for f in range(2)]
        sim.run(until=2.0)
        for stream in streams:
            stream.stop()
        return emulation.accuracy_report()

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    sink.row(f"reference mode: max_err={report.max_error_s*1e6:.3f}us")
    assert report.max_error_s == 0.0
