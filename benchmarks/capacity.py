"""Shared capacity-experiment machinery for Fig. 4 and Table 1."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.obs import RunReport

from repro.apps.netperf import TcpStream
from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline
from repro.core.assign import assign_by_vn_groups
from repro.core.emulator import Emulation
from repro.engine import Simulator
from repro.hardware.calibration import GIGABIT_EDGE_SPEC
from repro.topology import chain_topology, star_topology


@dataclass
class CapacityResult:
    flows: int
    hops: int
    pps: float
    cpu_utilization: float
    physical_drops: int
    report: Optional[RunReport] = field(default=None, repr=False)


def measure_chain_capacity(
    flows: int,
    hops: int,
    warm_s: float = 0.5,
    measure_s: float = 1.0,
) -> CapacityResult:
    """The Sec. 3.2 experiment: ``flows`` netperf TCP senders through
    one core over ``hops``-pipe paths of 10 Mb/s, 10 ms end to end;
    gigabit edge links so the core is the only physical bottleneck."""
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(
            chain_topology(flows, hops=hops, bandwidth_bps=10e6, latency_s=0.010)
        )
        .distill(DistillationMode.HOP_BY_HOP)
        .assign(1)
        .bind(10)
        .run(EmulationConfig(edge_spec=GIGABIT_EDGE_SPEC))
    )
    streams = [
        TcpStream(emulation, 2 * flow, 2 * flow + 1) for flow in range(flows)
    ]
    sim.run(until=warm_s)
    emulation.monitor.begin_window(sim.now)
    busy_before = emulation.cores[0].cpu_busy_s
    sim.run(until=warm_s + measure_s)
    pps = emulation.monitor.window_pps(sim.now)
    utilization = (emulation.cores[0].cpu_busy_s - busy_before) / measure_s
    for stream in streams:
        stream.stop()
    return CapacityResult(
        flows=flows,
        hops=hops,
        pps=pps,
        cpu_utilization=utilization,
        physical_drops=emulation.monitor.physical_drops,
        report=emulation.run_report(name=f"fig4-capacity-{flows}fx{hops}h"),
    )


@dataclass
class MultiCoreResult:
    cross_fraction: float
    pps: float
    tunnels: int


def measure_multicore_throughput(
    num_cores: int,
    cross_fraction: float,
    num_vns: int = 280,
    pipe_bps: float = 10e6,
    num_hosts: int = 20,
    warm_s: float = 0.5,
    measure_s: float = 0.5,
) -> MultiCoreResult:
    """The Table 1 experiment: a star topology of 5 ms access pipes
    split across ``num_cores`` by VN group; ``cross_fraction`` of
    sender->receiver pairs cross core boundaries.

    The offered load (num_vns/2 senders at ``pipe_bps``) must exceed
    the aggregate core capacity for the table to show saturation —
    the paper uses 560 senders at 10 Mb/s; the scaled default uses
    140 senders at 40 Mb/s for the same offered packet rate.
    """
    assert num_vns % (2 * num_cores) == 0
    assert num_hosts % num_cores == 0
    sim = Simulator()
    topology = star_topology(num_vns, bandwidth_bps=pipe_bps, latency_s=0.005)
    clients = sorted(node.id for node in topology.clients())
    per_core = num_vns // num_cores
    groups = [
        clients[core * per_core : (core + 1) * per_core]
        for core in range(num_cores)
    ]
    assignment = assign_by_vn_groups(topology, groups)
    # Bind hosts so each host's VNs live on the core owning their
    # pipes (the paper binds each physical node to a single core; a
    # misaligned binding would tunnel every packet at ingress).
    from repro.core.bind import Binding

    hosts_per_core = num_hosts // num_cores
    vns_per_host = num_vns // num_hosts
    binding = Binding(
        clients,
        [vn // vns_per_host for vn in range(num_vns)],
        [host // hosts_per_core for host in range(num_hosts)],
    )
    emulation = Emulation(
        sim,
        topology,
        EmulationConfig(
            num_cores=num_cores,
            num_hosts=num_hosts,
            edge_spec=GIGABIT_EDGE_SPEC,
        ),
        assignment=assignment,
        binding=binding,
    )

    # Within each core group: the first half are senders, the second
    # half receivers. A "local" flow pairs within the group; a
    # "cross" flow sends to the next group's receiver slot.
    # Within each core group: the first half send, the second half
    # receive. The first ``cross_fraction`` of each group's sender
    # slots target the *next* group's matching receiver slot, the
    # rest stay local — every receiver has exactly one sender, so
    # (as in the paper) there is no contention for last-hop pipes.
    senders_per_core = per_core // 2
    cross_slots = round(cross_fraction * senders_per_core)
    streams = []
    for core in range(num_cores):
        base = core * per_core
        for offset in range(senders_per_core):
            sender_vn = base + offset
            target_core = (core + 1) % num_cores if offset < cross_slots else core
            receiver_vn = target_core * per_core + senders_per_core + offset
            streams.append(TcpStream(emulation, sender_vn, receiver_vn))

    sim.run(until=warm_s)
    emulation.monitor.begin_window(sim.now)
    sim.run(until=warm_s + measure_s)
    pps = emulation.monitor.window_pps(sim.now)
    for stream in streams:
        stream.stop()
    return MultiCoreResult(
        cross_fraction=cross_fraction,
        pps=pps,
        tunnels=emulation.monitor.tunnels,
    )
