"""Figure 9 — CDFs of plain TCP transfer speed between RON sites.

The paper transfers files of 8, 64, and 1164 KB between all pairs of
RON nodes over plain TCP and plots the per-transfer speed CDF, on
both the real testbed and ModelNet. Shape targets:

* small transfers are much slower than large ones (handshake, slow
  start, and delayed ACKs dominate an 8 KB transfer over wide-area
  RTTs);
* 1126 KB transfers approach path bandwidth: a wide spread from
  ~30 KB/s (slow DSL/cable sites) up to ~300 KB/s;
* the ordering 8 KB < 64 KB < 1126 KB holds across the CDF.
"""

import pytest

from benchmarks.cfs_common import build_ron_emulation
from benchmarks.conftest import full_scale
from repro.analysis import Cdf

SIZES = {"8KB": 8 * 1024, "64KB": 64 * 1024, "1126KB": 1126 * 1024}


def tournament_rounds(n: int):
    """Round-robin (circle method) rounds: each round pairs every
    site at most once, so concurrent transfers never share an access
    link. Both directions of a pairing run in the same round (the
    access pipes are full duplex)."""
    sites = list(range(n))
    rounds = []
    for _round in range(n - 1):
        pairs = []
        for index in range(n // 2):
            a, b = sites[index], sites[n - 1 - index]
            pairs.append((a, b))
            pairs.append((b, a))
        rounds.append(pairs)
        sites = [sites[0]] + [sites[-1]] + sites[1:-1]
    return rounds


def run_transfers():
    results = {label: [] for label in SIZES}
    round_step = 1 if full_scale() else 2  # all 11 rounds vs every other
    round_spacing = 90.0  # worst pair: 1126 KB at ~30 KB/s ~ 38 s
    for label, size in SIZES.items():
        sim, emulation = build_ron_emulation(num_hosts=12)
        done = {}
        port_counter = [20000]

        def launch(src, dst, size=size):
            port = port_counter[0]
            port_counter[0] += 1
            started = sim.now

            def on_connection(conn):
                conn.on_message = lambda c, m: done.__setitem__(
                    (src, dst), sim.now - started
                )

            emulation.vn(dst).tcp_listen(port, on_connection)
            emulation.vn(src).tcp_connect(
                dst, port, on_established=lambda c: c.send(size, message="eof")
            )

        for round_index, pairs in enumerate(tournament_rounds(12)[::round_step]):
            when = round_index * round_spacing
            for src, dst in pairs:
                sim.at(when, launch, src, dst)
        sim.run(until=12 * round_spacing)
        for (src, dst), elapsed in done.items():
            results[label].append(size / elapsed)
    return results


def test_fig9_tcp_cdf(benchmark, sink):
    results = benchmark.pedantic(run_transfers, rounds=1, iterations=1)
    sink.row("Figure 9: CDF of TCP transfer speed by size (KB/s)")
    quantiles = (0.1, 0.25, 0.5, 0.75, 0.9)
    sink.row(f"{'size':>8} " + " ".join(f"p{int(q*100):>4}" for q in quantiles))
    cdfs = {}
    for label, speeds in results.items():
        assert len(speeds) >= 50, f"{label}: too many transfers failed"
        cdfs[label] = Cdf(speeds)
        sink.row(
            f"{label:>8} "
            + " ".join(f"{cdfs[label].quantile(q)/1024:>5.0f}" for q in quantiles)
        )

    # Stochastic ordering by transfer size.
    for q in (0.25, 0.5, 0.75):
        assert (
            cdfs["8KB"].quantile(q)
            < cdfs["64KB"].quantile(q)
            < cdfs["1126KB"].quantile(q)
        )

    # Large transfers approach path bandwidth: broad spread with the
    # top decile in the hundreds of KB/s, the bottom held down by the
    # slow sites.
    big = cdfs["1126KB"]
    assert big.quantile(0.9) > 120 * 1024
    assert big.quantile(0.1) < 80 * 1024
    assert big.quantile(0.9) < 450 * 1024
    # Spread of roughly 3-4x between slow and fast paths.
    assert big.quantile(0.9) > 2.5 * big.quantile(0.1)

    # Small transfers are RTT-dominated: median well under 100 KB/s.
    assert cdfs["8KB"].quantile(0.5) < 100 * 1024
