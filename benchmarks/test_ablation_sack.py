"""TCP stack ablation — Reno/NewReno vs SACK through the emulator.

The paper's edge nodes ran stock Linux 2.4 stacks, which shipped with
SACK. Our default stack is plain Reno/NewReno (matching the figures'
calibration); this bench quantifies what the SACK option changes when
paths are lossy: goodput on a long, lossy emulated path and the
retransmission/timeout budget spent.
"""

import pytest

from benchmarks.conftest import full_scale
from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.net.tcp import TcpParams
from repro.topology import chain_topology

LOSS_RATES = (0.0, 0.01, 0.03)
TRANSFER = 3_000_000


def run_transfer(loss: float, sack: bool):
    sim = Simulator()
    config = EmulationConfig.reference()
    config.tcp_params = TcpParams.modern() if sack else TcpParams()
    emulation = (
        ExperimentPipeline(sim)
        .create(
            chain_topology(
                1, hops=4, bandwidth_bps=8e6, latency_s=0.060, loss_rate=loss
            )
        )
        .distill(DistillationMode.HOP_BY_HOP)
        .run(config)
    )
    done = []
    emulation.vn(1).tcp_listen(80, lambda c: setattr(
        c, "on_message", lambda conn, m: done.append(sim.now)
    ))
    conn = emulation.vn(0).tcp_connect(
        1, 80, on_established=lambda c: c.send(TRANSFER, message="eof")
    )
    sim.run(until=600.0)
    elapsed = done[0] if done else float("inf")
    return {
        "goodput": TRANSFER * 8 / elapsed if done else 0.0,
        "timeouts": conn.timeouts,
        "retransmits": conn.segments_retransmitted,
    }


def test_ablation_sack(benchmark, sink):
    def run_all():
        rows = {}
        for loss in LOSS_RATES:
            for sack in (False, True):
                rows[(loss, sack)] = run_transfer(loss, sack)
        return rows

    rows = benchmark.pedantic(run_all, rounds=1, iterations=1)
    sink.row("Ablation: Reno/NewReno vs SACK on a lossy 4-hop path")
    sink.row(f"{'loss':>6} {'stack':>8} {'goodput(Mb/s)':>14} {'RTOs':>5} {'rexmit':>7}")
    for (loss, sack), row in sorted(rows.items()):
        sink.row(
            f"{loss:>6.2f} {'sack' if sack else 'reno':>8} "
            f"{row['goodput']/1e6:>14.2f} {row['timeouts']:>5} "
            f"{row['retransmits']:>7}"
        )

    # Loss-free: identical behavior (SACK adds nothing on clean paths).
    assert rows[(0.0, True)]["goodput"] == pytest.approx(
        rows[(0.0, False)]["goodput"], rel=0.05
    )
    assert rows[(0.0, True)]["retransmits"] == 0

    # Lossy paths: SACK never loses, and at the higher loss rate it
    # clearly wins on goodput or on the RTO budget.
    for loss in (0.01, 0.03):
        sack_row = rows[(loss, True)]
        reno_row = rows[(loss, False)]
        assert sack_row["goodput"] >= reno_row["goodput"] * 0.9
    high_sack = rows[(0.03, True)]
    high_reno = rows[(0.03, False)]
    assert (
        high_sack["goodput"] > high_reno["goodput"] * 1.1
        or high_sack["timeouts"] < high_reno["timeouts"]
    )
