"""Figure 6 — effects of multiplexing VN processes on an edge node.

The paper: nprog netperf/netserver pairs on one 1 GHz edge host, each
pair with 1/nprog of the 100 Mb/s link, exchanging 1500-byte UDP
packets with a configurable computation per transmitted byte. Shape
targets:

* with zero per-byte computation, ~95 Mb/s aggregate regardless of
  nprog (the NIC is the bottleneck, framing eats 5%);
* with nprog=1 the knee — the most instructions/byte that still
  sustains full rate — is ~76 i/B (theoretical 80 at 1 GHz);
* the knee falls with multiplexing degree (context-switch overhead):
  ~73 at nprog=2 down to ~65 at nprog=100.
"""

import pytest

from benchmarks.conftest import full_scale
from repro.apps.netperf import ComputePerByteSender, UdpSink
from repro.core import EmulationConfig, ExperimentPipeline
from repro.core.bind import Binding
from repro.core.emulator import Emulation
from repro.engine import Simulator
from repro.topology import star_topology


def measure_aggregate(nprog: int, instructions_per_byte: float,
                      measure_s: float = 0.5) -> float:
    """Aggregate UDP payload throughput (bits/sec) of nprog senders
    multiplexed on one host, each pair capped at 100/nprog Mb/s."""
    sim = Simulator()
    topology = star_topology(
        2 * nprog, bandwidth_bps=100e6 / nprog, latency_s=0.001
    )
    clients = sorted(node.id for node in topology.clients())
    # Host 0: all senders (VNs 0..nprog-1). Host 1: all sinks.
    binding = Binding(
        clients,
        [0] * nprog + [1] * nprog,
        [0, 0],
    )
    emulation = Emulation(
        sim,
        topology,
        EmulationConfig(model_edge_cpu=True, num_hosts=2),
        binding=binding,
    )
    sinks = [UdpSink(emulation.vn(nprog + index)) for index in range(nprog)]
    senders = [
        ComputePerByteSender(
            emulation.vn(index), nprog + index, instructions_per_byte
        )
        for index in range(nprog)
    ]
    warm = 0.2
    sim.run(until=warm)
    base = sum(sink.bytes_received for sink in sinks)
    sim.run(until=warm + measure_s)
    total = sum(sink.bytes_received for sink in sinks) - base
    for sender in senders:
        sender.stop()
    return total * 8.0 / measure_s


def run_sweep():
    nprogs = [1, 2, 4, 16, 100] if full_scale() else [1, 2, 16, 100]
    ipbs = [0, 50, 60, 65, 70, 73, 76, 80, 85, 90, 100]
    results = {}
    for nprog in nprogs:
        for ipb in ipbs:
            results[(nprog, ipb)] = measure_aggregate(nprog, ipb)
    return results


def knee(results, nprog, threshold=0.97) -> float:
    """Largest instructions/byte still delivering >= threshold of
    the zero-computation rate."""
    full_rate = results[(nprog, 0)]
    best = 0
    for (n, ipb), rate in sorted(results.items()):
        if n == nprog and rate >= threshold * full_rate:
            best = max(best, ipb)
    return best


def test_fig6_multiplexing(benchmark, sink):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    nprogs = sorted({n for n, _ in results})
    ipbs = sorted({i for _, i in results})
    sink.row("Figure 6: aggregate throughput (Mb/s) vs instructions/byte")
    sink.row(f"{'i/B':>5} " + " ".join(f"n={n:<4}" for n in nprogs))
    for ipb in ipbs:
        sink.row(
            f"{ipb:>5} "
            + " ".join(f"{results[(n, ipb)]/1e6:>6.1f}" for n in nprogs)
        )
    knees = {n: knee(results, n) for n in nprogs}
    sink.row(f"knees (i/B at >=97% of full rate): {knees}")

    # ~95 Mb/s at zero computation for every multiplexing degree.
    for nprog in nprogs:
        assert results[(nprog, 0)] == pytest.approx(95e6, rel=0.05)

    # nprog=1 sustains full rate through ~76 i/B but not 85+.
    assert knees[1] >= 73
    assert results[(1, 90)] < 0.95 * results[(1, 0)]

    # The knee decreases monotonically with multiplexing degree,
    # reaching ~65 i/B at nprog=100.
    knee_values = [knees[n] for n in nprogs]
    for earlier, later in zip(knee_values, knee_values[1:]):
        assert later <= earlier
    assert 55 <= knees[100] <= 70

    # Throughput at high computation is CPU-bound: it scales like
    # 1/ipb and is below the NIC rate.
    assert results[(1, 100)] < 0.92 * results[(1, 0)]
