"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper: it runs
the experiment (once — these are system experiments, not
micro-timings), prints the same rows/series the paper reports, writes
them to ``benchmarks/results/<name>.txt``, and asserts the *shape*
the paper claims (who wins, rough factors, where knees fall).

Scaling: by default experiments are moderately scaled down so the
whole suite runs in minutes; set ``REPRO_BENCH_FULL=1`` for
paper-scale parameters.
"""

import json
import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


class ResultSink:
    """Collects experiment output and writes it to the results
    directory (stdout is captured by pytest) — both the printable
    table (``<name>.txt``) and a machine-readable companion
    (``<name>.json``) carrying the same rows plus any scalar metrics
    and :class:`repro.obs.RunReport` manifests the benchmark attached,
    so runs can be compared across commits without screen-scraping."""

    def __init__(self, name: str):
        self.name = name
        self.lines = []
        self.metrics = {}
        self.reports = []

    def row(self, text: str) -> None:
        self.lines.append(text)
        print(text)

    def metric(self, key: str, value) -> None:
        """Record one machine-readable scalar for the JSON report."""
        self.metrics[key] = value

    def attach_report(self, report) -> None:
        """Attach a full RunReport manifest to the JSON report."""
        self.reports.append(report)

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n".join(self.lines) + "\n")
        payload = {
            "name": self.name,
            "rows": self.lines,
            "metrics": self.metrics,
            "reports": [report.to_dict() for report in self.reports],
        }
        json_path = RESULTS_DIR / f"{self.name}.json"
        json_path.write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n"
        )


@pytest.fixture
def sink(request):
    result = ResultSink(request.node.name)
    yield result
    result.flush()
