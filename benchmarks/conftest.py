"""Shared infrastructure for the reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper: it runs
the experiment (once — these are system experiments, not
micro-timings), prints the same rows/series the paper reports, writes
them to ``benchmarks/results/<name>.txt``, and asserts the *shape*
the paper claims (who wins, rough factors, where knees fall).

Scaling: by default experiments are moderately scaled down so the
whole suite runs in minutes; set ``REPRO_BENCH_FULL=1`` for
paper-scale parameters.
"""

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_BENCH_FULL", "") == "1"


class ResultSink:
    """Collects printable experiment output and writes it to the
    results directory (stdout is captured by pytest)."""

    def __init__(self, name: str):
        self.name = name
        self.lines = []

    def row(self, text: str) -> None:
        self.lines.append(text)
        print(text)

    def flush(self) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.name}.txt"
        path.write_text("\n".join(self.lines) + "\n")


@pytest.fixture
def sink(request):
    result = ResultSink(request.node.name)
    yield result
    result.flush()
