"""Sec. 5 — the large gnutella connectivity study.

The paper's largest experiment "evaluated system evolution and
connectivity of a 10,000 node network of unmodified gnutella clients
by mapping 100 VNs to each of 100 edge nodes". We stage joins for a
population of servents, track overlay connectivity as the system
evolves, and verify queries resolve across the converged overlay.

Default scale is 600 VNs; REPRO_BENCH_FULL=1 runs 10,000 VNs on 100
emulated edge hosts as in the paper.
"""

import pytest

from benchmarks.conftest import full_scale
from repro.apps import GnutellaNetwork
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import star_topology


def run_study():
    population = 10_000 if full_scale() else 600
    hosts = 100 if full_scale() else 10
    sim = Simulator()
    emulation = (
        ExperimentPipeline(sim)
        .create(star_topology(population, bandwidth_bps=10e6, latency_s=0.020))
        .bind(hosts)
        .run(EmulationConfig.reference())
    )
    network = GnutellaNetwork(emulation, list(range(population)))
    network.staged_join(interval_s=0.02)

    evolution = []

    def snapshot():
        evolution.append(
            {
                "t": sim.now,
                "largest": network.largest_component_fraction(),
                "degree": network.mean_degree(),
            }
        )

    join_done = population * 0.02
    for fraction in (0.25, 0.5, 1.0):
        sim.at(join_done * fraction, snapshot)
    sim.at(join_done + 20.0, snapshot)
    sim.run(until=join_done + 20.0)

    # Query phase: content on 1% of nodes, queries from 20 others.
    # Staged growth yields a high-diameter overlay (no host caches
    # providing random long links), so searches use a deep TTL.
    holders = network.place_content("the-file", max(6, population // 100))
    hits = []
    queriers = [vn for vn in range(0, population, population // 20)][:20]
    for querier in queriers:
        network.nodes[querier].query(
            "the-file", on_hit=lambda holder, kw: hits.append(holder), ttl=8
        )
    sim.run(until=sim.now + 30.0)
    return evolution, hits, set(holders), network


def test_gnutella_scale(benchmark, sink):
    evolution, hits, holders, network = benchmark.pedantic(
        run_study, rounds=1, iterations=1
    )
    sink.row("Gnutella evolution: overlay connectivity during staged join")
    sink.row(f"{'t(s)':>7} {'largest-component':>18} {'mean-degree':>12}")
    for snap in evolution:
        sink.row(
            f"{snap['t']:>7.1f} {snap['largest']*100:>17.1f}% {snap['degree']:>12.2f}"
        )
    sink.row(f"queries hit holders: {len(hits)} hits from {len(holders)} replicas")

    # Connectivity improves as the system evolves and ends near-total.
    assert evolution[-1]["largest"] > 0.95
    assert evolution[0]["largest"] <= evolution[-1]["largest"] + 1e-9

    # Degrees bounded by protocol limits.
    assert 1.5 <= evolution[-1]["degree"] <= network.max_degree

    # Flooded queries find real replicas.
    assert hits
    assert set(hits) <= holders
