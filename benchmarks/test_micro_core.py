"""Sec. 2.2 / 3.2 micro-benchmarks of core data-path operations.

These are true micro-timings (pytest-benchmark's natural mode): the
per-packet route lookup, pipe arrival/service, and scheduler costs of
*this implementation*, reported alongside the emulated cost-model
constants the paper measured (8.3 us/packet, 0.5 us/hop on a 1.4 GHz
P-III; our calibrated model uses 3.2 us + 1.0 us — see
repro.hardware.calibration).

Also checks the routing-matrix alternatives of Sec. 2.2: the O(n^2)
precomputed matrix and the hash-cache-with-on-demand-Dijkstra agree,
and a cached lookup is far cheaper than a cold one.
"""

import random

import pytest

from repro.core.packet import PacketDescriptor
from repro.core.pipe import Pipe
from repro.core.scheduler import PipeScheduler
from repro.net.packet import Packet
from repro.routing import CachedRouting, PrecomputedRouting
from repro.topology import TransitStubSpec, transit_stub_topology


@pytest.fixture(scope="module")
def topology():
    spec = TransitStubSpec(
        transit_nodes_per_domain=4,
        stub_domains_per_transit_node=3,
        stub_nodes_per_domain=4,
    )
    return transit_stub_topology(spec, random.Random(4))


def test_micro_route_lookup_cached(benchmark, topology):
    routing = CachedRouting(topology)
    clients = sorted(n.id for n in topology.clients())
    pairs = [(a, b) for a in clients[:12] for b in clients[:12] if a != b]
    for a, b in pairs:
        routing.route(a, b)  # warm the cache

    def lookup_all():
        for a, b in pairs:
            routing.route(a, b)

    benchmark(lookup_all)
    assert routing.hits > 0


def test_micro_route_compute_cold(benchmark, topology):
    clients = sorted(n.id for n in topology.clients())

    def cold():
        routing = CachedRouting(topology)
        routing.route(clients[0], clients[-1])
        return routing

    routing = benchmark(cold)
    assert routing.misses == 1


def test_micro_matrix_and_cache_agree(benchmark, topology):
    clients = sorted(n.id for n in topology.clients())[:10]
    matrix = benchmark(lambda: PrecomputedRouting(topology, sources=clients))
    cache = CachedRouting(topology)
    for a in clients:
        for b in clients:
            assert matrix.route(a, b) == cache.route(a, b)


def test_micro_pipe_hop(benchmark):
    pipe = Pipe(0, 1e9, 0.0, queue_limit=10_000)
    scheduler = PipeScheduler(tick_s=1e-4)
    packet = Packet(0, 1, 1000, "udp")

    def one_hop(state={"now": 0.0}):
        state["now"] += 1e-3
        descriptor = PacketDescriptor(packet, (pipe,), 0, state["now"])
        pipe.arrival(descriptor, state["now"], state["now"])
        scheduler.notify(pipe)
        scheduler.collect(state["now"] + 1.0)

    benchmark(one_hop)
    assert pipe.departures > 0


def test_micro_descriptor_creation(benchmark):
    packet = Packet(0, 1, 1500, "tcp")
    pipes = (Pipe(0, 1e6, 0.01), Pipe(1, 1e6, 0.01))

    def create():
        return PacketDescriptor(packet, pipes, 0, 1.0)

    descriptor = benchmark(create)
    assert descriptor.remaining_hops == 2


def test_cost_model_constants_documented(benchmark):
    """The emulated per-packet/per-hop costs stay consistent with
    the documented calibration (guards against silent drift)."""
    from repro.hardware.calibration import DEFAULT_CORE_SPEC

    spec = benchmark(lambda: DEFAULT_CORE_SPEC)

    # Saturation implied by the model: ~89 kpps at 8 hops, CPU-bound.
    pps_8hop = 1.0 / (spec.per_packet_s + 8 * spec.per_hop_s)
    assert pps_8hop == pytest.approx(89_000, rel=0.02)
    # ~50% CPU at the 1-hop NIC-bound plateau of ~120 kpps.
    cpu_at_nic_limit = 120_000 * (spec.per_packet_s + spec.per_hop_s)
    assert 0.4 < cpu_at_nic_limit < 0.6
