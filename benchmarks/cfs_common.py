"""Shared setup for the CFS reproduction benches (Figs. 7-9)."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.apps.cfs import CfsNetwork
from repro.apps.rondata import ron_topology
from repro.core import EmulationConfig, ExperimentPipeline
from repro.core.bind import Binding
from repro.core.emulator import Emulation
from repro.engine import Simulator

FILE_BYTES = 1_000_000
RON_SEED = 7


def build_ron_emulation(
    num_hosts: int = 12,
    model_edge_cpu: bool = False,
) -> Tuple[Simulator, Emulation]:
    """The 12 RON sites as VNs. ``num_hosts=12`` is the paper's
    "ModelNet 12 machines" configuration; ``num_hosts=1`` multiplexes
    all 12 VNs (and their processing) onto a single edge node — the
    "ModelNet 1 machine" curve."""
    sim = Simulator()
    topology, _sites = ron_topology(seed=RON_SEED)
    clients = sorted(node.id for node in topology.clients())
    binding = Binding(
        clients,
        [vn % num_hosts if num_hosts > 1 else 0 for vn in range(12)],
        [0] * num_hosts,
    )
    config = EmulationConfig.reference()
    config.model_edge_cpu = model_edge_cpu
    emulation = Emulation(sim, topology, config, binding=binding)
    return sim, emulation


def cfs_download_speed(
    sim: Simulator,
    network: CfsNetwork,
    client_vn: int,
    file_id: str,
    prefetch_bytes: int,
    deadline_s: float = 600.0,
) -> Optional[float]:
    """Run one 1 MB download; returns bytes/sec, or None on timeout."""
    speeds: List[float] = []
    network.client(client_vn).download(
        file_id, FILE_BYTES, prefetch_bytes=prefetch_bytes,
        on_done=speeds.append,
    )
    sim.run(until=sim.now + deadline_s)
    return speeds[0] if speeds else None
