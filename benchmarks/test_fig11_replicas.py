"""Figure 11 — replica count vs. client-perceived latency CDF.

The paper (Sec. 5.2, topology of Fig. 10): four client clouds of 30
VNs each (1 Mb/s access links) play a 2.5-minute web trace at 60-100
requests/s against 1, 2, or 3 Apache replicas on a modified 320-node
transit-stub topology (transit-transit 50 Mb/s / 50 ms, transit-stub
25 Mb/s / 10 ms, stub-stub 10 Mb/s / 5 ms, servers on 100 Mb/s / 1 ms
links). Shape targets:

* one replica: interior contention produces a heavy latency tail
  (the paper: ~10% of requests above 5 s);
* a second replica largely eliminates the contention — a large
  improvement across the distribution;
* a third replica adds only marginal benefit.

Server CPU is never the bottleneck (paper: ~10% utilization), so the
experiment isolates network contention, which only works because the
emulator models interior pipes.
"""

import random

import pytest

from benchmarks.conftest import full_scale
from repro.analysis import Cdf, synthesize_web_trace
from repro.apps import TraceClient, WebServer
from repro.core import EmulationConfig, ExperimentPipeline
from repro.engine import Simulator
from repro.topology import NodeKind, Topology

CLIENTS_PER_CLOUD = 30


def fig10_topology():
    """The Figure 10 shape: a transit ring t0..t3, one 30-VN client
    cloud per transit, three server attachment points, plus filler
    stub domains to reach the ~320-node scale."""
    topology = Topology("fig10")
    transits = [topology.add_node(NodeKind.TRANSIT) for _ in range(4)]
    for index in range(4):
        topology.add_link(
            transits[index].id,
            transits[(index + 1) % 4].id,
            50e6,
            0.050,
            queue_limit=100,
        )

    client_vn_ids = {}
    for cloud in range(4):
        stub = topology.add_node(NodeKind.STUB, cloud=f"C{cloud + 1}")
        topology.add_link(transits[cloud].id, stub.id, 25e6, 0.010)
        ids = []
        for _ in range(CLIENTS_PER_CLOUD):
            client = topology.add_node(NodeKind.CLIENT, cloud=f"C{cloud + 1}")
            topology.add_link(stub.id, client.id, 1e6, 0.001)
            ids.append(client.id)
        client_vn_ids[cloud] = ids

    server_ids = []
    # R1 near t0 (between C1/C2 in the figure), R2 near t1, R3 near t3.
    for transit_index in (0, 1, 3):
        stub = topology.add_node(NodeKind.STUB, role="server-stub")
        topology.add_link(transits[transit_index].id, stub.id, 25e6, 0.010)
        server = topology.add_node(NodeKind.CLIENT, role="server")
        topology.add_link(stub.id, server.id, 100e6, 0.001)
        server_ids.append(server.id)

    # Filler stub domains ("S" clouds with more complex internal
    # connectivity): rings of stub routers per transit.
    rng = random.Random(10)
    for transit in transits:
        for _ in range(2):
            routers = [topology.add_node(NodeKind.STUB) for _ in range(22)]
            for index, router in enumerate(routers):
                neighbor = routers[(index + 1) % len(routers)]
                topology.add_link(router.id, neighbor.id, 10e6, 0.005)
            topology.add_link(transit.id, routers[0].id, 25e6, 0.010)
    return topology, client_vn_ids, server_ids


def run_experiment():
    topology, client_node_ids, server_node_ids = fig10_topology()
    duration = 150.0 if full_scale() else 60.0
    # Response sizes calibrated so the 60-100 req/s trace offers on
    # average ~the single server's 25 Mb/s interior attachment (mean
    # ~40 KB -> ~26 Mb/s at 80 req/s): rate bursts push the shared
    # interior pipe into sustained congestion, which is what produces
    # the paper's single-server tail, while each client's private
    # 1 Mb/s access stays under ~35% utilized so it never masks the
    # effect.
    trace = synthesize_web_trace(
        random.Random(11),
        duration_s=duration,
        size_median_bytes=20_000,
        size_sigma=1.2,
        size_cap_bytes=300_000,
    )

    results = {}
    for replicas in (1, 2, 3):
        sim = Simulator()
        emulation = (
            ExperimentPipeline(sim)
            .create(topology.copy())
            .run(EmulationConfig.reference())
        )
        # Map topology node ids to VN indices.
        node_to_vn = {vn.node_id: vn.vn_id for vn in emulation.vns}
        server_vns = [node_to_vn[node] for node in server_node_ids]
        for vn in server_vns:
            WebServer(emulation, vn)

        def server_for(cloud: int) -> int:
            if replicas >= 2 and cloud in (0, 1):
                return server_vns[1]  # C1, C2 -> R2
            if replicas >= 3 and cloud == 3:
                return server_vns[2]  # C4 -> R3
            return server_vns[0]

        clients = []
        for cloud, node_ids in client_node_ids.items():
            target = server_for(cloud)
            for position, node_id in enumerate(node_ids):
                client_index = cloud * CLIENTS_PER_CLOUD + position
                requests = trace.slice_for_client(
                    client_index, 4 * CLIENTS_PER_CLOUD
                )
                clients.append(
                    TraceClient(emulation, node_to_vn[node_id], target, requests)
                )
        sim.run(until=duration + 60.0)
        latencies = [
            latency for client in clients for latency in client.latencies
        ]
        completed = sum(len(c.completed) for c in clients)
        issued = sum(c.issued for c in clients)
        results[replicas] = (latencies, completed, issued)
    return results


def test_fig11_replicas(benchmark, sink):
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    sink.row("Figure 11: CDF of client-perceived latency (s) by replicas")
    quantiles = (0.1, 0.25, 0.5, 0.75, 0.9, 0.99)
    sink.row(f"{'replicas':>9} " + " ".join(f"p{int(q*100):>5}" for q in quantiles))
    cdfs = {}
    for replicas, (latencies, completed, issued) in sorted(results.items()):
        cdfs[replicas] = Cdf(latencies)
        sink.row(
            f"{replicas:>9} "
            + " ".join(f"{cdfs[replicas].quantile(q):>6.2f}" for q in quantiles)
            + f"   ({completed}/{issued} done)"
        )

    for replicas, (latencies, completed, issued) in results.items():
        assert completed > 0.9 * issued, f"{replicas} replicas: many failures"

    one, two, three = cdfs[1], cdfs[2], cdfs[3]

    # One replica: a heavy contention tail (a nontrivial share of
    # requests takes multi-second latencies).
    assert one.quantile(0.9) > 1.0
    assert one.fraction_below(5.0) < 0.99

    # A second replica is a large improvement across the tail...
    assert two.quantile(0.9) < one.quantile(0.9) * 0.6
    assert two.quantile(0.75) < one.quantile(0.75)

    # ...while the third is marginal by comparison.
    improvement_2 = one.quantile(0.9) - two.quantile(0.9)
    improvement_3 = two.quantile(0.9) - three.quantile(0.9)
    assert improvement_3 < 0.5 * improvement_2
    assert three.quantile(0.5) < two.quantile(0.5) * 1.25
