"""Figure 5 — effects of distillation on a ring topology.

The paper: 20 routers in a 20 Mb/s ring, 20 VNs per router on 2 Mb/s
access links; 200 random TCP flows. CDF of per-flow bandwidth under

* hop-by-hop emulation — matches ns2 at 20 Mb/s: flows are
  constrained by ring contention (offered ~27.5 Mb/s per transit
  link), giving a broad spread of bandwidths;
* end-to-end distillation — no interior contention: every flow gets
  its full 2 Mb/s;
* last-mile (walk-in=1) — contention modeled only on shared receiver
  access links: ~64% of flows share a receiver and get <= 1 Mb/s,
  the rest get 2 Mb/s; qualitatively matches ns2 with an 80 Mb/s
  (well-provisioned) ring.

Pipe-count accounting is also checked against the paper's numbers
(420 target links, 79,800 end-to-end pipes, 590 last-mile pipes).
"""

import random

import pytest

from benchmarks.conftest import full_scale
from repro.analysis import Cdf
from repro.apps.netperf import TcpStream
from repro.core import DistillationMode, EmulationConfig, ExperimentPipeline, distill
from repro.engine import Simulator
from repro.topology import ring_topology

NUM_FLOWS = 200
MEASURE_S = 8.0


def ring():
    return ring_topology(
        num_routers=20,
        vns_per_router=20,
        ring_bandwidth_bps=20e6,
        vn_bandwidth_bps=2e6,
    )


def random_flows(rng):
    """200 generator->receiver pairs.

    The 400 VNs are evenly partitioned into generators (even index)
    and receivers (odd index) on every router. Receiver routers are
    drawn with locality calibrated so the 20 Mb/s ring runs ~2.5x
    oversubscribed (broad, roughly even bandwidth spread as in the
    paper's figure) while an 80 Mb/s ring is adequately provisioned
    (the paper's "ns2 80 Mb/s" regime). Receivers are drawn with
    replacement, so ~2/3 of flows share one, as in the paper.
    """
    receivers_by_router = {
        router: [router * 20 + slot for slot in range(1, 20, 2)]
        for router in range(20)
    }
    distances = [0, 1, 2, 3, 4, 5]
    weights = [0.10, 0.20, 0.20, 0.20, 0.15, 0.15]  # E[|d|] ~ 2.55
    flows = []
    for router in range(20):
        for slot in range(0, 20, 2):
            sender = router * 20 + slot
            distance = rng.choices(distances, weights)[0]
            direction = rng.choice((-1, 1))
            target_router = (router + direction * distance) % 20
            receiver = rng.choice(receivers_by_router[target_router])
            flows.append((sender, receiver))
    return flows


def measure_flow_bandwidths(mode, flows, ring_bw=20e6, reference=False,
                            walk_in=1):
    topology = ring_topology(
        num_routers=20,
        vns_per_router=20,
        ring_bandwidth_bps=ring_bw,
        vn_bandwidth_bps=2e6,
    )
    sim = Simulator()
    config = (
        EmulationConfig.reference() if reference else EmulationConfig()
    )
    emulation = (
        ExperimentPipeline(sim)
        .create(topology)
        .distill(mode, walk_in=walk_in)
        .assign(1)
        .bind(20)
        .run(config)
    )
    streams = [TcpStream(emulation, src, dst) for src, dst in flows]
    sim.run(until=2.0)
    for stream in streams:
        stream.mark()
    sim.run(until=2.0 + MEASURE_S)
    rates = [stream.throughput_bps() for stream in streams]
    for stream in streams:
        stream.stop()
    return rates


def run_all():
    rng = random.Random(42)
    flows = random_flows(rng)
    series = {}
    series["hop-by-hop"] = measure_flow_bandwidths(
        DistillationMode.HOP_BY_HOP, flows
    )
    series["ns2-proxy 20Mb"] = measure_flow_bandwidths(
        DistillationMode.HOP_BY_HOP, flows, reference=True
    )
    series["ns2-proxy 80Mb"] = measure_flow_bandwidths(
        DistillationMode.HOP_BY_HOP, flows, ring_bw=80e6, reference=True
    )
    series["last-mile"] = measure_flow_bandwidths(
        DistillationMode.WALK_IN, flows
    )
    series["end-to-end"] = measure_flow_bandwidths(
        DistillationMode.END_TO_END, flows
    )
    return flows, series


def test_fig5_distillation(benchmark, sink):
    flows, series = benchmark.pedantic(run_all, rounds=1, iterations=1)

    # --- pipe accounting (Sec. 4.1 text) -------------------------------
    topology = ring()
    assert topology.num_links == 420
    e2e = distill(topology, DistillationMode.END_TO_END)
    assert e2e.topology.num_links == 79_800
    last_mile = distill(topology, DistillationMode.WALK_IN, walk_in=1)
    assert last_mile.topology.num_links == 590
    sink.row("Pipe accounting: target=420, end-to-end=79800, last-mile=590")

    sink.row("")
    sink.row("Figure 5: CDF of per-flow bandwidth (Kb/s)")
    quantiles = (0.1, 0.25, 0.5, 0.75, 0.9)
    header = f"{'series':>16} " + " ".join(f"p{int(q*100):>2}" for q in quantiles)
    sink.row(header)
    for name, rates in series.items():
        cdf = Cdf(rates)
        row = f"{name:>16} " + " ".join(
            f"{cdf.quantile(q)/1e3:>4.0f}" for q in quantiles
        )
        sink.row(row)

    hop = Cdf(series["hop-by-hop"])
    ns20 = Cdf(series["ns2-proxy 20Mb"])
    ns80 = Cdf(series["ns2-proxy 80Mb"])
    last = Cdf(series["last-mile"])
    e2e_rates = Cdf(series["end-to-end"])

    # End-to-end: no interior contention; only flows sharing a
    # receiver fall short, median flow achieves ~full 2 Mb/s goodput.
    assert e2e_rates.quantile(0.9) > 1.7e6

    # Hop-by-hop shows a broad spread from ring contention: the
    # median flow is well below 2 Mb/s and the spread is wide.
    assert hop.quantile(0.5) < 1.5e6
    assert hop.quantile(0.9) - hop.quantile(0.1) > 0.7e6

    # Hop-by-hop emulation matches the exact (ns2 stand-in) run.
    for q in (0.25, 0.5, 0.75):
        assert hop.quantile(q) == pytest.approx(ns20.quantile(q), rel=0.25, abs=2e5)

    # Last-mile resembles the well-provisioned (80 Mb/s) ring: no
    # transit contention, so both sit well above the 20 Mb/s run at
    # the median.
    assert last.quantile(0.5) > hop.quantile(0.5)
    assert last.quantile(0.5) == pytest.approx(
        ns80.quantile(0.5), rel=0.3, abs=2.5e5
    )

    # The share of flows at full rate under last-mile roughly matches
    # the fraction with a private receiver (~36% in the paper).
    from collections import Counter

    receiver_load = Counter(dst for _src, dst in flows)
    private = sum(1 for _src, dst in flows if receiver_load[dst] == 1)
    private_fraction = private / len(flows)
    fraction_full = 1.0 - Cdf(series["last-mile"]).fraction_below(1.5e6)
    # Every privately-received flow reaches full rate; TCP unfairness
    # lets some sharing flows briefly exceed the fair split too, so
    # the full-rate share sits at or somewhat above the private share.
    assert private_fraction - 0.1 <= fraction_full <= private_fraction + 0.3
