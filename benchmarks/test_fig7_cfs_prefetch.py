"""Figure 7 — CFS download speed vs. prefetch window.

The paper reproduces CFS's prefetch experiment: download speed of a
1 MB file striped across 12 RON-condition nodes, as a function of the
Chord prefetch window, run both with 12 VNs on 12 edge machines and
with all 12 VNs multiplexed onto one machine. Shape targets:

* speed rises steeply with the prefetch window (lookup/fetch
  pipelining) and saturates by ~100-200 KB of prefetch;
* speeds land in the tens-to-~200 KB/s range of the CFS paper;
* the 1-machine and 12-machine configurations agree closely (the
  multiplexing-fidelity claim).
"""

import pytest

from benchmarks.cfs_common import FILE_BYTES, build_ron_emulation, cfs_download_speed
from benchmarks.conftest import full_scale
from repro.apps.cfs import CfsNetwork


def run_curves():
    windows = (
        [8, 16, 24, 40, 64, 96, 128, 200]
        if full_scale()
        else [8, 24, 40, 96, 200]
    )
    curves = {}
    for label, hosts in (("12-machines", 12), ("1-machine", 1)):
        sim, emulation = build_ron_emulation(num_hosts=hosts)
        network = CfsNetwork(emulation, list(range(12)))
        # Average each window over the same fast-site clients so the
        # curve varies with the window, not the downloader's access.
        clients = [1, 2, 6]
        speeds = {}
        for window_kb in windows:
            samples = []
            for client in clients:
                file_id = f"{label}-file-{window_kb}-c{client}"
                network.store_file(file_id, FILE_BYTES)
                speed = cfs_download_speed(
                    sim, network, client, file_id, window_kb * 1024
                )
                if speed is not None:
                    samples.append(speed)
            speeds[window_kb] = sum(samples) / len(samples) if samples else None
        curves[label] = speeds
    return curves


def test_fig7_cfs_prefetch(benchmark, sink):
    curves = benchmark.pedantic(run_curves, rounds=1, iterations=1)
    windows = sorted(curves["12-machines"])
    sink.row("Figure 7: CFS download speed vs prefetch window (KB/s)")
    sink.row(f"{'prefetch_KB':>12} {'12-machines':>12} {'1-machine':>10}")
    for window in windows:
        twelve = curves["12-machines"][window]
        one = curves["1-machine"][window]
        sink.row(
            f"{window:>12} {twelve/1024 if twelve else 0:>12.1f} "
            f"{one/1024 if one else 0:>10.1f}"
        )

    twelve = curves["12-machines"]
    assert all(speed is not None for speed in twelve.values())

    # Speed rises strongly with prefetch window...
    assert twelve[max(windows)] > 2.5 * twelve[8]
    # ...monotonically up to saturation (tolerate 15% noise).
    ordered = [twelve[w] for w in windows]
    for earlier, later in zip(ordered, ordered[1:]):
        assert later > earlier * 0.85

    # Speeds in the CFS paper's range (tens to ~250 KB/s).
    assert 5 * 1024 < twelve[8] < 120 * 1024
    assert 40 * 1024 < twelve[max(windows)] < 400 * 1024

    # Multiplexing 12 VNs on one machine reproduces the 12-machine
    # results closely.
    for window in windows:
        one = curves["1-machine"][window]
        assert one is not None
        assert one == pytest.approx(twelve[window], rel=0.35)
